"""Warm workers: resident designs shared through POSIX shared memory.

The batch pool pays the full job cost on every attempt: a fresh process
imports numpy, regenerates (or re-parses) the design, rebuilds the CSR
indices, then places.  A service sees the *same* design over and over —
parameter sweeps, seed races, repeated API submissions — so this module
keeps workers alive between jobs and makes the design transfer free:

* :func:`publish_design` copies a netlist's big arrays once into
  ``multiprocessing.shared_memory`` segments and returns a JSON-able
  *manifest* (segment names + shapes + dtypes + the small metadata);
* :func:`attach_design` maps those segments read-only in a worker and
  rebuilds a :class:`~repro.netlist.Netlist` around zero-copy views
  (derived CSR indices are recomputed locally by ``__post_init__``);
* each :class:`WarmPool` worker keeps attached designs *resident* in an
  LRU keyed by :func:`design_key`, so a repeat-design job skips design
  loading entirely — the ``runtime`` stage metrics record which path a
  job took (``warm`` = ``resident`` / ``attached`` / ``cold``).

The parent-side :class:`DesignStore` owns the segments (create +
unlink); workers only attach, and explicitly *unregister* their attach
from the ``resource_tracker`` — on this CPython, attaching registers
the segment too, and a dying worker would otherwise unlink a segment
the parent still serves (gh-82300).

Netlist arrays are safe to share read-only: stages never mutate them
(``freeze_cells`` copies before editing), and the attached views are
marked non-writeable so a regression fails loudly.

When no multiprocessing context is available the pool degrades to one
thread per worker (cooperative cancellation, designs resident in a
process-local store) — same API, reduced isolation, matching the batch
pool's inline fallback.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import queue as queue_mod
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.callbacks import IterationCallback
from repro.netlist import Netlist
from repro.netlist.fence import FenceRegion
from repro.netlist.region import PlacementRegion, Row
from repro.runtime.job import PlacementJob, execute_job
from repro.runtime.pool import JobInterruptedError, _resolve_context

#: Netlist array fields worth sharing (everything sized N, P or E).
DESIGN_ARRAY_FIELDS = (
    "cell_w", "cell_h", "movable", "fixed_x", "fixed_y",
    "pin2cell", "pin_dx", "pin_dy", "pin2net",
    "net_start", "net_weight", "cell_fence",
)


def design_key(job: PlacementJob) -> str:
    """Stable hash of the job's *input circuit* (not its params).

    Two jobs with the same key load byte-identical netlists, so they
    can share one resident design.
    """
    canonical = json.dumps(job.design_digest(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# -- shared-memory design transport -----------------------------------

def publish_design(netlist: Netlist,
                   key: str) -> Tuple[Dict[str, Any], List[Any]]:
    """Copy a netlist's arrays into shared memory; returns
    ``(manifest, segments)``.

    The caller owns the segments: keep them referenced while any worker
    may attach, then ``close()`` + ``unlink()`` them (see
    :class:`DesignStore`).
    """
    arrays: Dict[str, Dict[str, Any]] = {}
    segments: List[Any] = []
    try:
        for field_name in DESIGN_ARRAY_FIELDS:
            arr = np.ascontiguousarray(getattr(netlist, field_name))
            shm = shared_memory.SharedMemory(create=True,
                                             size=max(1, arr.nbytes))
            segments.append(shm)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            arrays[field_name] = {
                "shm": shm.name,
                "shape": list(arr.shape),
                "dtype": arr.dtype.str,
            }
    except Exception:
        # A failed create/copy mid-loop must not leak the segments
        # already published — named shared memory outlives the process.
        for shm in segments:
            shm.close()
            with contextlib.suppress(FileNotFoundError):
                shm.unlink()
        raise
    manifest = {
        "key": key,
        "name": netlist.name,
        "arrays": arrays,
        "cell_name": list(netlist.cell_name),
        "net_name": list(netlist.net_name),
        "region": {
            "xl": netlist.region.xl, "yl": netlist.region.yl,
            "xh": netlist.region.xh, "yh": netlist.region.yh,
            "rows": [
                {"y": r.y, "height": r.height, "xl": r.xl, "xh": r.xh,
                 "site_width": r.site_width}
                for r in netlist.region.rows
            ],
        },
        "fences": [
            {"name": f.name, "boxes": [list(b) for b in f.boxes]}
            for f in netlist.fences
        ],
    }
    return manifest, segments


def attach_design(manifest: Dict[str, Any]) -> Tuple[Netlist, List[Any]]:
    """Rebuild a netlist over read-only views of shared segments.

    Returns ``(netlist, segments)`` — the segments must stay referenced
    (and be ``close()``-d) by the attaching process for as long as the
    netlist is used.  Raises ``FileNotFoundError`` when the publisher
    already unlinked a segment; callers fall back to a cold load.
    """
    segments: List[Any] = []
    arrays: Dict[str, np.ndarray] = {}
    try:
        for field_name, spec in manifest["arrays"].items():
            # Attaching re-registers the segment with the resource
            # tracker (gh-82300), but pool workers inherit the parent's
            # tracker (fork and spawn both pass the tracker fd down),
            # whose cache is a *set* — the duplicate registration
            # dedupes, and the publisher's unlink unregisters cleanly.
            # Never unregister here: a shared tracker would lose the
            # publisher's entry.
            shm = shared_memory.SharedMemory(name=spec["shm"])
            segments.append(shm)
            view = np.ndarray(tuple(spec["shape"]),
                              dtype=np.dtype(spec["dtype"]),
                              buffer=shm.buf)
            view.flags.writeable = False
            arrays[field_name] = view
    except Exception:
        for shm in segments:
            shm.close()
        raise
    region = PlacementRegion(
        xl=manifest["region"]["xl"], yl=manifest["region"]["yl"],
        xh=manifest["region"]["xh"], yh=manifest["region"]["yh"],
        rows=[Row(**row) for row in manifest["region"]["rows"]],
    )
    fences = [
        FenceRegion(name=f["name"],
                    boxes=tuple(tuple(b) for b in f["boxes"]))
        for f in manifest["fences"]
    ]
    netlist = Netlist(
        cell_name=list(manifest["cell_name"]),
        net_name=list(manifest["net_name"]),
        region=region,
        name=manifest.get("name", "design"),
        fences=fences,
        **arrays,
    )
    return netlist, segments


class DesignStore:
    """Parent-side LRU of published designs (owns the shm segments)."""

    def __init__(self, max_designs: int = 8) -> None:
        self.max_designs = max(1, int(max_designs))
        self._designs: "OrderedDict[str, Tuple[dict, list]]" = OrderedDict()
        self._lock = threading.Lock()

    def manifest_for(self, job: PlacementJob) -> Dict[str, Any]:
        """The manifest for the job's design, publishing on first use."""
        key = design_key(job)
        with self._lock:
            if key in self._designs:
                self._designs.move_to_end(key)
                return self._designs[key][0]
        netlist = job.load_netlist()          # load outside the lock
        manifest, segments = publish_design(netlist, key)
        with self._lock:
            if key in self._designs:          # lost a publish race
                for shm in segments:
                    shm.close()
                    shm.unlink()
                self._designs.move_to_end(key)
                return self._designs[key][0]
            self._designs[key] = (manifest, segments)
            while len(self._designs) > self.max_designs:
                _, (_, old) = self._designs.popitem(last=False)
                for shm in old:
                    shm.close()
                    shm.unlink()
        return manifest

    def __len__(self) -> int:
        with self._lock:
            return len(self._designs)

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._designs)

    def unlink_segments(self, key: str) -> int:
        """Unlink a design's segments *without* dropping the manifest —
        the unlink-under-reader failure: the store still advertises the
        design, but the next :func:`attach_design` raises and workers
        fall back to a cold load.  Chaos seam; returns the number of
        segments unlinked (0 when the key is unknown)."""
        with self._lock:
            entry = self._designs.get(key)
            if entry is None:
                return 0
            _, segments = entry
            unlinked = 0
            for shm in segments:
                with contextlib.suppress(FileNotFoundError):
                    shm.unlink()
                    unlinked += 1
        return unlinked

    def close(self) -> None:
        with self._lock:
            for _, segments in self._designs.values():
                for shm in segments:
                    shm.close()
                    with contextlib.suppress(FileNotFoundError):
                        shm.unlink()
            self._designs.clear()


# -- the worker loop ---------------------------------------------------

class _CancelWatch(IterationCallback):
    """Cooperative cancel for thread-mode workers."""

    def __init__(self, event: threading.Event) -> None:
        self._event = event

    def _check(self) -> None:
        if self._event.is_set():
            raise JobInterruptedError("cancel requested")

    def on_start(self, info) -> None:
        self._check()

    def on_iteration(self, record) -> None:
        self._check()


def _warm_worker_main(worker_id: int, tasks, out, heartbeat_every: int,
                      checkpoint_dir: Optional[str], max_resident: int,
                      cancel_event: Optional[threading.Event] = None) -> None:
    """Long-lived worker: lease messages, keep designs resident.

    Task messages: ``{"kind": "job", "ticket", "job": <job dict>,
    "resume": bool, "manifest": <design manifest or None>}`` or
    ``{"kind": "stop"}``.  Every job answers with a ``"_picked"``
    announcement (so the parent can target kills) and a terminal
    ``"_result"`` message keyed by ticket.
    """
    if cancel_event is None:
        # Process mode: a worker forked while the daemon's shutdown
        # handlers were armed (e.g. a respawn mid-serve) inherits them,
        # which would make ``terminate()`` a no-op and, worse, run the
        # daemon's shutdown logic inside the worker.  Restore defaults.
        import signal

        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(ValueError, OSError):  # platform-dependent
                signal.signal(sig, signal.SIG_DFL)
    resident: "OrderedDict[str, Tuple[Netlist, list]]" = OrderedDict()

    def evict_to(limit: int) -> None:
        while len(resident) > limit:
            _, (_, segments) = resident.popitem(last=False)
            for shm in segments:
                shm.close()

    try:
        while True:
            message = tasks.get()
            if message is None or message.get("kind") == "stop":
                break
            job = PlacementJob.from_dict(message["job"])
            ticket = message["ticket"]
            if cancel_event is not None:
                cancel_event.clear()
            out.put({"event": "_picked", "ticket": ticket,
                     "worker": worker_id, "pid": os.getpid(),
                     "job_id": job.job_id})
            chaos = message.get("chaos") or {}
            if chaos.get("crash_on_attach") and cancel_event is None:
                # Injected repeated crash-on-pickup (chaos harness):
                # die the instant the job is picked, before any design
                # work — the parent sees a dead worker holding the
                # ticket, exactly like a worker whose attach segfaults.
                os._exit(int(chaos.get("exitcode", 173)))
            key = design_key(job)
            load_started = time.perf_counter()
            netlist = None
            warm = "cold"
            if key in resident:
                resident.move_to_end(key)
                netlist = resident[key][0]
                warm = "resident"
            else:
                manifest = message.get("manifest")
                if manifest is not None:
                    try:
                        netlist, segments = attach_design(manifest)
                    except Exception:
                        netlist = None     # publisher gone: load cold
                    else:
                        warm = "attached"
                        resident[key] = (netlist, segments)
                if netlist is None:
                    netlist = job.load_netlist()
                    resident[key] = (netlist, [])
                evict_to(max_resident)
            load_seconds = time.perf_counter() - load_started
            callbacks = ([_CancelWatch(cancel_event)]
                         if cancel_event is not None else None)
            try:
                result = execute_job(
                    job,
                    emit=out.put,
                    heartbeat_every=heartbeat_every,
                    callbacks=callbacks,
                    checkpoint_dir=checkpoint_dir,
                    resume=bool(message.get("resume")),
                    in_worker=cancel_event is None,
                    netlist=netlist,
                    extra_metrics={
                        "warm": warm,
                        "design_load_seconds": round(load_seconds, 6),
                        "warm_worker": worker_id,
                    },
                )
            except JobInterruptedError:
                out.put({"event": "_result", "ticket": ticket,
                         "worker": worker_id, "status": "cancelled",
                         "job_id": job.job_id,
                         "seed": job.effective_seed()})
            except Exception as err:  # noqa: BLE001 — worker must answer
                report = getattr(err, "flow_report", None)
                out.put({"event": "_result", "ticket": ticket,
                         "worker": worker_id, "status": "failed",
                         "job_id": job.job_id,
                         "seed": job.effective_seed(),
                         "error": f"{type(err).__name__}: {err}",
                         "report": (report.to_dict()
                                    if report is not None else None)})
            else:
                out.put({"event": "_result", "ticket": ticket,
                         "worker": worker_id, "status": "done",
                         "job_id": job.job_id,
                         "result": result.to_dict(),
                         "x": result.x, "y": result.y})
    finally:
        evict_to(0)


# -- the pool ----------------------------------------------------------

@dataclass
class _WorkerHandle:
    worker_id: int
    runner: Any                       # Process or Thread
    tasks: Any                        # its task queue
    cancel_event: Optional[threading.Event] = None
    busy: Optional[str] = None        # ticket currently assigned
    seen_keys: set = field(default_factory=set)


class WarmPool:
    """A fixed fleet of warm workers plus the shared design store.

    Unlike :class:`~repro.runtime.pool.WorkerPool` (one process per
    *attempt*, full lifecycle policy inside), this pool is a dumb
    transport: the daemon owns scheduling, retries, timeouts and event
    routing, and drives the pool through :meth:`submit` / :meth:`poll`
    / :meth:`kill_worker`.  Messages from workers come back raw —
    ``_picked`` / QueueCallback loop events / ``_result``.
    """

    def __init__(
        self,
        workers: int = 2,
        start_method: Optional[str] = None,
        heartbeat_every: int = 25,
        checkpoint_dir: Optional[str] = None,
        max_resident: int = 8,
    ) -> None:
        self.heartbeat_every = heartbeat_every
        self.checkpoint_dir = checkpoint_dir
        self.max_resident = max(1, int(max_resident))
        self._ctx = _resolve_context(start_method)
        self.inline = self._ctx is None
        self._out = queue_mod.Queue() if self.inline else self._ctx.Queue()
        # Shared designs only make sense across process boundaries; the
        # thread fallback shares the worker-resident dicts natively.
        self.store = None if self.inline else DesignStore(self.max_resident)
        if not self.inline:
            # Start the resource tracker *before* forking workers.  A
            # worker forked while no tracker exists lazily spawns its
            # own on attach; that orphan tracker keeps the attach
            # registration forever and tries to unlink long-gone
            # segments at exit.  Pre-starting makes every worker
            # inherit the parent's tracker, where the duplicate
            # registration dedupes against the publisher's.
            with contextlib.suppress(Exception):  # tracker internals vary
                resource_tracker.ensure_running()
        # Guards the _workers dict itself: the daemon's drive loop
        # kills/respawns handles while HTTP threads walk them for
        # /stats.  Handle *fields* (busy, seen_keys) stay loop-owned.
        self._lock = threading.Lock()
        self._workers: Dict[int, _WorkerHandle] = {}
        self._quarantined: set = set()
        self._manifest_sent: Dict[str, bool] = {}
        # Optional CircuitBreaker guarding shared-memory publishes
        # (installed by the daemon's supervisor): while open, submits
        # skip the manifest and workers cold-load — the cold-attach
        # degraded mode.
        self.store_guard = None
        for worker_id in range(max(1, int(workers))):
            self._spawn(worker_id)

    # -- worker management -------------------------------------------

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        if self.inline:
            tasks: Any = queue_mod.Queue()
            cancel = threading.Event()
            runner: Any = threading.Thread(
                target=_warm_worker_main,
                args=(worker_id, tasks, self._out, self.heartbeat_every,
                      self.checkpoint_dir, self.max_resident, cancel),
                daemon=True,
                name=f"warm-worker-{worker_id}",
            )
        else:
            tasks = self._ctx.Queue()
            cancel = None
            runner = self._ctx.Process(
                target=_warm_worker_main,
                args=(worker_id, tasks, self._out, self.heartbeat_every,
                      self.checkpoint_dir, self.max_resident),
                daemon=True,
            )
        runner.start()
        handle = _WorkerHandle(worker_id=worker_id, runner=runner,
                               tasks=tasks, cancel_event=cancel)
        with self._lock:
            self._workers[worker_id] = handle
        return handle

    @property
    def workers(self) -> List[int]:
        with self._lock:
            return sorted(self._workers)

    def idle_workers(self) -> List[int]:
        with self._lock:
            handles = sorted(self._workers.items())
            quarantined = set(self._quarantined)
        return [wid for wid, h in handles
                if h.busy is None and h.runner.is_alive()
                and wid not in quarantined]

    # -- quarantine ---------------------------------------------------
    # Quarantined workers stay alive (their resident designs may be
    # fine) but are excluded from rotation until the supervisor's
    # canary probe restores or replaces them.  Targeted submits
    # (worker_id=...) still reach them — that is how the canary runs.

    def quarantine(self, worker_id: int) -> None:
        with self._lock:
            self._quarantined.add(worker_id)

    def unquarantine(self, worker_id: int) -> None:
        with self._lock:
            self._quarantined.discard(worker_id)

    def quarantined(self) -> List[int]:
        with self._lock:
            return sorted(self._quarantined)

    def worker_alive(self, worker_id: int) -> bool:
        with self._lock:
            handle = self._workers.get(worker_id)
        return bool(handle) and handle.runner.is_alive()

    def worker_busy(self, worker_id: int) -> Optional[str]:
        """The ticket a worker is running, or ``None`` when idle."""
        with self._lock:
            handle = self._workers.get(worker_id)
        return handle.busy if handle is not None else None

    def worker_for(self, ticket: str) -> Optional[int]:
        with self._lock:
            handles = list(self._workers.items())
        for wid, handle in handles:
            if handle.busy == ticket:
                return wid
        return None

    # -- job traffic --------------------------------------------------

    def submit(self, ticket: str, job: PlacementJob,
               resume: bool = False,
               worker_id: Optional[int] = None,
               chaos: Optional[Dict[str, Any]] = None) -> int:
        """Hand one job to a worker; returns the worker id.

        Prefers an idle worker that already has the design resident
        (warm dispatch); the caller must keep submissions ≤ idle
        workers — an over-submit queues behind the busy worker.
        ``chaos`` rides the task message untouched (fault harness).
        """
        key = design_key(job)
        if worker_id is None:
            idle = self.idle_workers()
            if not idle:
                idle = self.workers
            with self._lock:
                warm = [wid for wid in idle
                        if key in self._workers[wid].seen_keys]
            worker_id = (warm or idle)[0]
        with self._lock:
            handle = self._workers[worker_id]
        manifest = None
        if self.store is not None and key not in handle.seen_keys:
            guard = self.store_guard
            if guard is None or guard.allow():
                try:
                    manifest = self.store.manifest_for(job)
                except Exception:
                    # Publish failed (shm exhausted, segment vanished):
                    # degrade this dispatch to a cold load and let the
                    # breaker decide when to try publishing again.
                    if guard is not None:
                        guard.record_failure()
                    manifest = None
        handle.seen_keys.add(key)
        handle.busy = ticket
        with self._lock:
            self._manifest_sent[ticket] = manifest is not None
        handle.tasks.put({"kind": "job", "ticket": ticket,
                          "job": job.to_dict(), "resume": bool(resume),
                          "manifest": manifest, "chaos": chaos})
        return worker_id

    def consume_manifest_flag(self, ticket: str) -> bool:
        """Whether ``ticket``'s dispatch carried a shm manifest (one
        query per dispatch — the flag pops).  The daemon compares this
        against the result's ``warm`` metric: a cold load despite a
        manifest means a worker failed to attach (unlinked segment)."""
        with self._lock:
            return self._manifest_sent.pop(ticket, False)

    def poll(self, timeout: float = 0.05) -> List[Dict[str, Any]]:
        """Drain worker messages (at most ``timeout`` seconds of wait).

        ``_result`` messages free their worker for the next submit.
        """
        messages: List[Dict[str, Any]] = []
        deadline = time.perf_counter() + max(0.0, timeout)
        while True:
            remaining = deadline - time.perf_counter()
            try:
                message = self._out.get(timeout=max(0.001, remaining))
            except queue_mod.Empty:
                return messages  # nothing more within the poll window
            messages.append(message)
            if message.get("event") == "_result":
                worker_id = message.get("worker")
                with self._lock:
                    handle = self._workers.get(worker_id)
                if handle is not None and handle.busy == message.get("ticket"):
                    handle.busy = None
            if time.perf_counter() >= deadline:
                break
        return messages

    def kill_worker(self, worker_id: int, respawn: bool = True) -> None:
        """Stop a worker mid-job (timeout/cancel) and replace it.

        Process mode terminates the worker (its resident designs die
        with it); thread mode requests cooperative cancellation and
        keeps the thread (threads cannot be killed).
        """
        with self._lock:
            handle = self._workers.get(worker_id)
        if handle is None:
            return
        if self.inline:
            if handle.cancel_event is not None:
                handle.cancel_event.set()
            handle.busy = None
            return
        handle.runner.terminate()
        handle.runner.join(timeout=5)
        with self._lock:
            self._workers.pop(worker_id, None)
        if respawn:
            self._spawn(worker_id)

    def respawn_dead(self) -> List[int]:
        """Replace crashed workers; returns the respawned ids."""
        respawned = []
        with self._lock:
            handles = list(self._workers.items())
        for worker_id, handle in handles:
            if not handle.runner.is_alive():
                if not self.inline:
                    handle.runner.join(timeout=1)
                with self._lock:
                    self._workers.pop(worker_id, None)
                self._spawn(worker_id)
                respawned.append(worker_id)
        return respawned

    # -- lifecycle ----------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        with self._lock:
            handles = list(self._workers.values())
        for handle in handles:
            with contextlib.suppress(Exception):  # queue may already be gone
                handle.tasks.put({"kind": "stop"})
        for handle in handles:
            handle.runner.join(timeout=timeout)
            if not self.inline and handle.runner.is_alive():
                handle.runner.terminate()
                handle.runner.join(timeout=1)
        with self._lock:
            self._workers.clear()
        if self.store is not None:
            self.store.close()
