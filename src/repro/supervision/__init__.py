"""repro.supervision — service-level self-healing.

The service stack (scheduler, warm pool, daemon) built in
:mod:`repro.service` polices jobs with a coarse wall-clock deadline and
retries crashes, but nothing watches the *fleet*: a worker that stops
heartbeating holds its slot until the deadline, a flapping worker is
re-fed jobs at full rate, and a sick dependency (cache disk, shared
memory, journal fsync) fails every request instead of degrading.  This
package closes that loop:

:mod:`repro.supervision.liveness`
    :class:`LivenessMonitor` folds the per-job heartbeat/iteration
    events the workers already emit into progress ledgers and
    distinguishes *hung* (no progress within a timeout) from
    *slow-but-progressing* (iterations still advancing); plus
    :class:`WorkerHealth`, a per-worker crash/hang/timeout EWMA that
    drives quarantine.

:mod:`repro.supervision.breakers`
    :class:`CircuitBreaker` (closed / open / half-open, injectable
    clock so chaos runs are deterministic) and
    :class:`GuardedResultCache`, the cache-bypass degraded mode.

:mod:`repro.supervision.brownout`
    :class:`BrownoutController`: admission control that sheds
    low-priority submits (HTTP 503 + Retry-After) while the service is
    degraded, and refuses everything while draining.

:mod:`repro.supervision.supervisor`
    :class:`Supervisor` composes the above for the daemon and owns the
    ``ok`` / ``degraded`` / ``draining`` state machine reported by
    ``/healthz`` and ``/stats``.

:mod:`repro.supervision.chaos`
    The ``repro chaos`` soak harness: drives a real daemon through a
    seeded :class:`~repro.faults.service.ServiceFaultPlan` and emits a
    :class:`ChaosReport` proving every ticket terminates, none are
    lost, and recovery is bit-identical.
"""

from repro.supervision.breakers import (
    BREAKER_STATES,
    CircuitBreaker,
    GuardedResultCache,
)
from repro.supervision.brownout import BrownoutController, BrownoutShed
from repro.supervision.chaos import (
    ChaosConfig,
    ChaosReport,
    chaos_fingerprint,
    run_chaos,
)
from repro.supervision.liveness import LivenessMonitor, WorkerHealth
from repro.supervision.supervisor import SupervisionConfig, Supervisor

__all__ = [
    "BREAKER_STATES",
    "BrownoutController",
    "BrownoutShed",
    "ChaosConfig",
    "ChaosReport",
    "CircuitBreaker",
    "GuardedResultCache",
    "LivenessMonitor",
    "SupervisionConfig",
    "Supervisor",
    "WorkerHealth",
    "chaos_fingerprint",
    "run_chaos",
]
