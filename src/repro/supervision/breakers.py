"""Circuit breakers: bounded blast radius for sick dependencies.

A :class:`CircuitBreaker` is the classic three-state machine:

``closed``
    Normal operation.  Consecutive failures are counted; reaching
    ``failure_threshold`` *trips* the breaker open.
``open``
    The dependency is presumed down: :meth:`allow` answers False and
    the caller takes its degraded path (cache-bypass, cold-attach,
    buffered journaling) instead of paying the failure again.  After
    ``cooldown`` seconds the next :meth:`allow` moves to half-open.
``half-open``
    One probe is let through.  Success closes the breaker; failure
    re-opens it (a fresh trip) for another cooldown.

The clock is injectable (default ``time.monotonic``) so chaos tests
drive transitions deterministically, and every transition is reported
through ``on_transition`` — the daemon turns those into ``breaker``
runtime events.

:class:`GuardedResultCache` is the cache's degraded mode: a proxy with
the :class:`~repro.runtime.cache.ResultCache` surface the scheduler
uses (``get`` / ``put`` / ``stats`` / counters) that routes every call
through a breaker.  While the breaker is open, ``get`` reports a miss
and ``put`` drops the entry — placements still run, they just stop
touching the sick disk.  An operation that raises ``OSError`` *or*
takes longer than ``slow_op_seconds`` counts as a failure, so a
pathologically slow disk browns the cache out exactly like a broken
one (slow I/O is the failure mode chaos injects).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

BREAKER_STATES = ("closed", "open", "half-open")


class CircuitBreaker:
    """Closed / open / half-open failure isolation for one dependency.

    Thread-safe; transition callbacks run outside the internal lock so
    they may emit events freely.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        cooldown: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0          # consecutive failures while closed
        self._opened_at = 0.0
        self._trips = 0

    # -- state machine ------------------------------------------------

    def allow(self) -> bool:
        """May the caller attempt the operation right now?

        Open breakers answer False until the cooldown elapses, then
        transition to half-open and admit the probe.
        """
        transition = None
        with self._lock:
            if self._state == "open":
                if self._clock() - self._opened_at >= self.cooldown:
                    transition = (self._state, "half-open")
                    self._state = "half-open"
                else:
                    return False
        if transition is not None:
            self._notify(*transition)
        return True

    def record_success(self) -> None:
        transition = None
        with self._lock:
            self._failures = 0
            if self._state != "closed":
                transition = (self._state, "closed")
                self._state = "closed"
        if transition is not None:
            self._notify(*transition)

    def record_failure(self) -> None:
        transition = None
        with self._lock:
            self._failures += 1
            tripping = (
                self._state == "half-open"
                or (self._state == "closed"
                    and self._failures >= self.failure_threshold)
            )
            if tripping:
                transition = (self._state, "open")
                self._state = "open"
                self._opened_at = self._clock()
                self._failures = 0
                self._trips += 1
            elif self._state == "open":
                # A straggling in-flight failure while already open:
                # push the cooldown out, it is fresh evidence.
                self._opened_at = self._clock()
        if transition is not None:
            self._notify(*transition)

    def _notify(self, old: str, new: str) -> None:
        if self._on_transition is not None:
            self._on_transition(self.name, old, new)

    # -- reporting ----------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            data = {
                "name": self.name,
                "state": self._state,
                "failures": self._failures,
                "trips": self._trips,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown,
            }
            if self._state == "open":
                data["open_age_s"] = round(
                    max(0.0, self._clock() - self._opened_at), 4)
        return data


class GuardedResultCache:
    """A :class:`~repro.runtime.cache.ResultCache` behind a breaker.

    Drop-in for every surface the scheduler and daemon use.  Degraded
    mode is *cache bypass*: lookups report misses, stores are dropped,
    and ``bypassed`` counts how many operations were shed.  Failures
    are ``OSError`` from the underlying cache or an operation slower
    than ``slow_op_seconds`` (None disables the slow check).

    ``fault_hook`` is the chaos seam: called as ``hook(op)`` before the
    real I/O with ``op`` in ``("cache-get", "cache-put")``; it may
    sleep (slow-I/O fault) or raise ``OSError``.
    """

    def __init__(
        self,
        cache,
        breaker: CircuitBreaker,
        slow_op_seconds: Optional[float] = None,
        fault_hook: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.cache = cache
        self.breaker = breaker
        self.slow_op_seconds = slow_op_seconds
        self._fault_hook = fault_hook
        self._clock = clock
        self.bypassed = 0

    # -- guarded operations ------------------------------------------

    def _guarded(self, op: str, call: Callable[[], Any],
                 fallback: Any) -> Any:
        if not self.breaker.allow():
            self.bypassed += 1
            return fallback
        started = self._clock()
        try:
            if self._fault_hook is not None:
                self._fault_hook(op)
            value = call()
        except OSError:
            self.breaker.record_failure()
            self.bypassed += 1
            return fallback
        elapsed = self._clock() - started
        if self.slow_op_seconds is not None \
                and elapsed > self.slow_op_seconds:
            self.breaker.record_failure()
        else:
            self.breaker.record_success()
        return value

    def get(self, job, on_evict=None):
        return self._guarded(
            "cache-get", lambda: self.cache.get(job, on_evict=on_evict),
            fallback=None,
        )

    def put(self, job, result) -> None:
        self._guarded("cache-put", lambda: self.cache.put(job, result),
                      fallback=None)

    # -- passthrough surface ------------------------------------------

    @property
    def hits(self) -> int:
        return self.cache.hits

    @property
    def misses(self) -> int:
        return self.cache.misses

    @property
    def evictions(self) -> int:
        return self.cache.evictions

    @property
    def root(self):
        return self.cache.root

    def path_for(self, key: str) -> str:
        return self.cache.path_for(key)

    def stats(self) -> Dict[str, Any]:
        stats = self.cache.stats()
        stats["bypassed"] = self.bypassed
        stats["breaker"] = self.breaker.to_dict()
        return stats
