"""Brownout admission control: shed load before falling over.

When the service is *degraded* (an open breaker, quarantined workers)
the right response to new work is not "accept and thrash" but "shed
the cheap traffic and protect the important jobs".
:class:`BrownoutController` implements that policy at the submit path:

* ``ok``        — everything is admitted.
* ``degraded``  — submissions with ``priority < shed_below_priority``
  are refused with :class:`BrownoutShed` (the HTTP layer maps it to
  503 + ``Retry-After``); higher priorities still run.
* ``draining``  — the daemon is shutting down: *every* submission is
  refused so a load balancer fails over cleanly.

The controller does not decide *whether* the service is degraded —
the :class:`~repro.supervision.supervisor.Supervisor` computes that
from breaker and quarantine state and passes it in — it only owns the
shed policy and its counter.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

SERVICE_STATES = ("ok", "degraded", "draining")


class BrownoutShed(RuntimeError):
    """A submission refused by the brownout controller."""

    def __init__(self, state: str, priority: int,
                 retry_after: float) -> None:
        super().__init__(
            f"submission shed: service {state} "
            f"(priority {priority}); retry in {retry_after:g}s"
        )
        self.state = state
        self.priority = priority
        self.retry_after = retry_after


class BrownoutController:
    """Priority-aware load shedding for a degraded service."""

    def __init__(self, shed_below_priority: int = 1,
                 retry_after: float = 2.0) -> None:
        self.shed_below_priority = int(shed_below_priority)
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._draining = False
        self._shed = 0

    # -- lifecycle ----------------------------------------------------

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def drain(self) -> None:
        """Enter draining: refuse all new work from now on."""
        with self._lock:
            self._draining = True

    # -- admission ----------------------------------------------------

    def state(self, degraded: bool) -> str:
        """The service state given the supervisor's degraded verdict."""
        if self.draining:
            return "draining"
        return "degraded" if degraded else "ok"

    def admit(self, priority: int, degraded: bool) -> None:
        """Raise :class:`BrownoutShed` when the submission must be
        refused; return silently when it may proceed."""
        state = self.state(degraded)
        shed = (
            state == "draining"
            or (state == "degraded"
                and priority < self.shed_below_priority)
        )
        if shed:
            with self._lock:
                self._shed += 1
            raise BrownoutShed(state, priority, self.retry_after)

    @property
    def shed(self) -> int:
        with self._lock:
            return self._shed

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "draining": self._draining,
                "shed": self._shed,
                "shed_below_priority": self.shed_below_priority,
                "retry_after_s": self.retry_after,
            }
