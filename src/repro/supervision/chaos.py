"""The deterministic service-chaos harness behind ``repro chaos``.

:func:`run_chaos` boots a real :class:`~repro.service.daemon.
PlacementService` (warm workers, journal, supervisor) against a seeded
:class:`~repro.faults.service.ServiceFaultPlan` and soaks it with a
batch of small placement jobs while the plan injects every service
failure class it scheduled — hung workers, mid-run crashes, slow
cache/journal I/O, shared-memory unlinks under readers, cache-entry
corruption, crash-on-attach loops and journal damage discovered at a
mid-soak restart.  The soak then *audits* itself into a
:class:`ChaosReport`:

* every submitted ticket reached a terminal state (zero lost, zero
  duplicated — checked against the journal, damage included);
* the hung job was preempted by the liveness monitor in strictly less
  wall-clock time than its deadline would have taken;
* checkpoint-resumed jobs (preempt / crash) produced *bit-identical*
  placements to their clean twins (same seed, no faults);
* a corrupted cache entry was evicted and recomputed to the same HPWL;
* the supervisor's quarantine machinery restores a flapping worker
  through a canary probe;
* a draining service sheds new submissions with Retry-After.

Everything the plan injects is journaled (``report.injected``), and
:func:`chaos_fingerprint` reduces a report to the schedule-determined
facts — two runs of the same seed must produce equal fingerprints,
which is what the CI ``chaos-soak`` job asserts.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.inject import corrupt_cache_entry
from repro.faults.service import (
    PROCESS_ONLY_KINDS,
    SERVICE_FAULT_KINDS,
    ServiceFaultPlan,
)
from repro.runtime.job import PlacementJob
from repro.runtime.pool import _resolve_context
from repro.service.journal import read_journal
from repro.supervision.brownout import BrownoutShed
from repro.supervision.supervisor import SupervisionConfig

# NOTE: repro.service.daemon imports this package's submodules, so the
# daemon itself is imported lazily inside run_chaos/_restart_leg.


@dataclass
class ChaosConfig:
    """Knobs of one seeded soak (all deterministic given ``seed``)."""

    seed: int = 0
    jobs: int = 20                    # soak jobs (twins come on top)
    workers: int = 2
    design: str = "fft_1"
    cells: int = 100
    iterations: int = 40              # GP iterations per job
    checkpoint_every: int = 5         # so preempt/crash resume works
    deadline: float = 60.0            # per-job wall-clock budget
    hang_seconds: float = 120.0       # how long a hung worker holds
    hang_timeout: float = 2.0         # liveness silence threshold
    slow_io_seconds: float = 0.25     # injected I/O delay
    heartbeat_every: int = 2          # GP iterations per heartbeat
    soak_timeout: float = 300.0       # overall harness budget
    state_dir: Optional[str] = None   # default: fresh temp dir
    start_method: Optional[str] = None
    restart: bool = True              # run the journal-damage leg
    kinds: tuple = SERVICE_FAULT_KINDS

    def supervision(self) -> SupervisionConfig:
        """The aggressive supervision profile the soak runs under."""
        return SupervisionConfig(
            hang_timeout=self.hang_timeout,
            preempt_retries=2,
            canary_delay=0.2,
            breaker_cooldown=0.5,
            # Injected slow ops sleep slow_io_seconds; anything slower
            # than a fifth of that counts as a breaker failure.
            slow_op_seconds=min(0.05, self.slow_io_seconds / 5.0),
            shed_retry_after=1.0,
        )


@dataclass
class ChaosReport:
    """The audited outcome of one seeded soak."""

    run_id: str
    seed: int
    inline: bool                      # thread-fallback pool (reduced set)
    tickets: Dict[str, str] = field(default_factory=dict)  # ticket→state
    tags: Dict[str, str] = field(default_factory=dict)     # tag→state
    injected: List[Dict[str, Any]] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    pairs: List[Dict[str, Any]] = field(default_factory=list)
    preemption: Dict[str, Any] = field(default_factory=dict)
    quarantine: Dict[str, Any] = field(default_factory=dict)
    shed: Dict[str, Any] = field(default_factory=dict)
    cache_check: Dict[str, Any] = field(default_factory=dict)
    restart: Dict[str, Any] = field(default_factory=dict)
    supervisor: Dict[str, Any] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "seed": self.seed,
            "ok": self.ok,
            "inline": self.inline,
            "seconds": round(self.seconds, 3),
            "tickets": self.tickets,
            "tags": self.tags,
            "injected": self.injected,
            "skipped": self.skipped,
            "pairs": self.pairs,
            "preemption": self.preemption,
            "quarantine": self.quarantine,
            "shed": self.shed,
            "cache_check": self.cache_check,
            "restart": self.restart,
            "supervisor": self.supervisor,
            "violations": self.violations,
            "fingerprint": chaos_fingerprint(self),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        lines = [
            f"chaos soak {self.run_id}: "
            + ("OK" if self.ok else "FAILED"),
            f"  tickets: {len(self.tickets)} "
            f"(terminal {sum(1 for s in self.tickets.values() if s in ('done', 'failed', 'timeout', 'cancelled'))})",
            f"  injected: {sorted(set(e['kind'] for e in self.injected))}",
        ]
        if self.skipped:
            lines.append(f"  skipped (inline pool): {self.skipped}")
        if self.pairs:
            identical = sum(1 for p in self.pairs if p.get("identical"))
            lines.append(f"  resume identity: {identical}/{len(self.pairs)} "
                         f"bit-identical twins")
        if self.preemption:
            lines.append(
                f"  preemption: {self.preemption.get('latency_s')}s "
                f"(deadline {self.preemption.get('deadline_s')}s)")
        if self.restart:
            lines.append(
                f"  restart: dropped={self.restart.get('dropped')} "
                f"duplicates={self.restart.get('duplicates')} "
                f"resumed={self.restart.get('resumed')}")
        counters = (self.supervisor or {}).get("counters", {})
        if any(counters.values()):
            lines.append(
                f"  supervision: {counters.get('preemptions', 0)} "
                f"preemption(s), {counters.get('quarantines', 0)} "
                f"quarantine(s), {counters.get('breaker_trips', 0)} "
                f"breaker trip(s), {counters.get('shed', 0)} shed "
                f"submit(s)")
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


def chaos_fingerprint(report: ChaosReport) -> str:
    """A digest of the schedule-determined facts of a soak.

    Wall-clock-sensitive details (latencies, which worker a retry
    landed on, exact breaker failure counts) are excluded; what remains
    — final state per job tag, the set of injected fault kinds, which
    breakers tripped, the quarantine-drill outcome — must be identical
    across two runs of the same seed.
    """
    breakers = report.supervisor.get("breakers", {})
    facts = {
        "run_id": report.run_id,
        "tags": dict(sorted(report.tags.items())),
        "injected_kinds": sorted(set(e["kind"] for e in report.injected)),
        "skipped": sorted(report.skipped),
        "tripped": {name: bool(info.get("trips"))
                    for name, info in sorted(breakers.items())},
        "pairs": [{k: p[k] for k in ("faulted", "twin", "identical")}
                  for p in report.pairs],
        "preempted": bool(report.preemption.get("latency_s") is not None),
        # The drill's restore outcome is schedule-determined; the raw
        # quarantine count is not (organic quarantines depend on which
        # worker a crashing retry lands on).
        "quarantine_restored": report.quarantine.get("restored"),
        "shed": bool(report.shed.get("raised")),
        "cache_recovered": report.cache_check.get("recovered"),
        "restart": {k: report.restart.get(k)
                    for k in ("dropped", "duplicates", "resumed")},
    }
    blob = json.dumps(facts, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# -- the soak ----------------------------------------------------------

def _positions_digest(result) -> Optional[str]:
    if result is None or result.x is None or result.y is None:
        return None
    blob = json.dumps([list(result.x), list(result.y)])
    return hashlib.sha256(blob.encode()).hexdigest()


def _wait_all(service, tickets: List[str],
              deadline: float, report: ChaosReport,
              plan: ServiceFaultPlan,
              unlink_after: Optional[int]) -> None:
    """Poll until every ticket is terminal, firing the mid-soak
    ``shm-unlink`` once enough jobs finished (so segments are published
    and have been attached by readers)."""
    unlinked = False
    while time.monotonic() < deadline:
        terminal = sum(1 for t in tickets if service.get(t).terminal)
        if not unlinked and unlink_after is not None \
                and terminal >= unlink_after \
                and service.pool is not None \
                and service.pool.store is not None:
            store = service.pool.store
            removed = {key: store.unlink_segments(key)
                       for key in store.keys()}
            if removed:
                plan.record("shm-unlink", segments=removed,
                            after_terminal=terminal)
            unlinked = True
        if terminal == len(tickets):
            return
        time.sleep(0.05)
    stuck = [t for t in tickets if not service.get(t).terminal]
    report.violations.append(f"soak timed out with live tickets: {stuck}")


def run_chaos(config: Optional[ChaosConfig] = None) -> ChaosReport:
    """Run one seeded soak end to end; see the module docstring."""
    from repro.service.daemon import PlacementService

    config = config or ChaosConfig()
    run_id = f"chaos-{config.seed}"
    started = time.monotonic()
    inline = _resolve_context(config.start_method) is None
    plan = ServiceFaultPlan.sample(
        run_id, config.jobs, kinds=config.kinds,
        max_iteration=config.iterations,
        hang_seconds=config.hang_seconds,
        slow_io_seconds=config.slow_io_seconds,
    )
    report = ChaosReport(run_id=run_id, seed=config.seed, inline=inline)
    if inline:
        report.skipped = sorted(
            {s.kind for s in plan.faults if s.kind in PROCESS_ONLY_KINDS})

    state_dir = config.state_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    params = {
        # min == max pins the iteration count: the fault iterations the
        # plan drew are always reached, every seed runs the same loop.
        "max_iterations": config.iterations,
        "min_iterations": config.iterations,
        "checkpoint_every": config.checkpoint_every,
    }

    def make_job(index: int, faulted: bool) -> PlacementJob:
        loop_plan = plan.loop_plan(index) if faulted and not inline else None
        return PlacementJob(
            design=config.design, cells=config.cells,
            seed=100 + index, params=dict(params),
            faults=loop_plan,
            timeout=config.deadline, retries=3, timeout_retries=1,
            tag=(f"chaos-{index}" if faulted else f"twin-{index}"),
        )

    resumable = [] if inline else sorted(
        {s.job_index for s in plan.specs_of("hang", "crash")})
    jobs = [make_job(i, faulted=True) for i in range(config.jobs)]
    twins = {i: make_job(i, faulted=False) for i in resumable}
    for i, job in enumerate(jobs):
        plan.bind_job(i, job.job_id)

    unlink_specs = plan.specs_of("shm-unlink")
    unlink_after = unlink_specs[0].count if (unlink_specs
                                             and not inline) else None

    service = PlacementService(
        state_dir, workers=config.workers,
        start_method=config.start_method,
        heartbeat_every=config.heartbeat_every,
        retry_backoff=0.05, retry_backoff_max=0.5,
        supervision=config.supervision(), fault_plan=plan,
    )
    service.start()
    wave1_tickets: List[str] = []
    tag_of: Dict[str, str] = {}
    try:
        # Priority 1 keeps the soak's own jobs above the brownout
        # shed threshold — degraded phases must not eat the workload.
        for job in list(jobs) + [twins[i] for i in sorted(twins)]:
            entry = service.submit({"job": job.to_dict(), "priority": 1})
            wave1_tickets.append(entry.ticket)
            tag_of[entry.ticket] = job.tag
        deadline = started + config.soak_timeout
        _wait_all(service, wave1_tickets, deadline, report, plan,
                  unlink_after)

        _audit_wave1(service, config, plan, report, jobs, twins,
                     wave1_tickets, tag_of)
        _drill_quarantine(service, config, report, deadline)
        _check_cache_corruption(service, config, plan, report, jobs,
                                deadline)
        _check_drain_shed(service, report)
        report.supervisor = service.supervisor.snapshot()
    finally:
        service.stop()

    if config.restart and not report.violations:
        _restart_leg(config, plan, report, state_dir, wave1_tickets)

    report.injected = plan.injection_log()
    report.seconds = time.monotonic() - started
    return report


def _audit_wave1(service, config, plan, report, jobs, twins,
                 tickets, tag_of) -> None:
    """Terminal states, preemption latency and resume bit-identity."""
    for ticket in tickets:
        entry = service.get(ticket)
        report.tickets[ticket] = entry.state
        report.tags[tag_of[ticket]] = entry.state
        if not entry.terminal:
            report.violations.append(f"ticket {ticket} not terminal")
        elif entry.state not in ("done", "cancelled"):
            report.violations.append(
                f"ticket {ticket} ({tag_of[ticket]}) ended "
                f"{entry.state}: {entry.result.error if entry.result else '?'}")

    # Loop faults (hang / crash) are delivered inside the workers, so
    # the plan cannot journal them at the seam — journal them here from
    # the evidence they must have left in the event stream.
    events = service.events.snapshot()
    if not report.inline:
        for spec in plan.specs_of("crash"):
            job_id = plan.job_id_of(spec.job_index)
            crashes = [e for e in events if e.kind == "retry"
                       and e.job_id == job_id
                       and e.payload.get("reason") == "crash"]
            if crashes:
                plan.record("crash", job_id=job_id,
                            iteration=spec.iteration,
                            retries=len(crashes))
            else:
                report.violations.append(
                    f"crash scheduled for {job_id} but no crash retry "
                    f"was observed")

    # Preemption: the hung job must have been preempted well before its
    # wall-clock deadline would have fired.
    hang_specs = plan.specs_of("hang")
    if hang_specs and not report.inline:
        preempted = [e for e in events if e.kind == "preempted"]
        if not preempted:
            report.violations.append("hang scheduled but nothing was "
                                     "preempted")
        else:
            event = preempted[0]
            plan.record("hang", job_id=event.job_id,
                        iteration=hang_specs[0].iteration,
                        preempted=True)
            starts = [e for e in events
                      if e.kind == "started" and e.job_id == event.job_id
                      and e.ts <= event.ts]
            latency = event.ts - starts[-1].ts if starts else None
            report.preemption = {
                "job_id": event.job_id,
                "latency_s": round(latency, 3) if latency else None,
                "deadline_s": config.deadline,
                "idle_s": event.payload.get("idle_s"),
            }
            if latency is None or latency >= config.deadline:
                report.violations.append(
                    f"preemption took {latency}s, not strictly under "
                    f"the {config.deadline}s deadline")

    # Bit-identity: preempt/crash-resumed jobs vs their clean twins.
    by_tag = {}
    for ticket in tickets:
        by_tag[tag_of[ticket]] = service.get(ticket)
    for index in sorted(twins):
        faulted = by_tag.get(f"chaos-{index}")
        twin = by_tag.get(f"twin-{index}")
        if faulted is None or twin is None:
            continue
        a = _positions_digest(faulted.result)
        b = _positions_digest(twin.result)
        pair = {
            "faulted": f"chaos-{index}", "twin": f"twin-{index}",
            "identical": bool(a is not None and a == b),
            "hpwl_faulted": faulted.result.hpwl if faulted.result else None,
            "hpwl_twin": twin.result.hpwl if twin.result else None,
        }
        report.pairs.append(pair)
        if not pair["identical"]:
            report.violations.append(
                f"resumed job chaos-{index} is not bit-identical to its "
                f"clean twin")
    if twins and not report.pairs:
        report.violations.append("no resume-identity pair was compared")


def _drill_quarantine(service, config, report, deadline) -> None:
    """Deterministically flap worker 0 into quarantine and verify the
    canary probe restores it.  (Organic quarantines from crash-on-attach
    depend on which worker the retries land on — this drill pins the
    outcome so the fingerprint stays seed-deterministic.)"""
    supervisor = service.supervisor
    before = supervisor.counters()
    service._note_worker(service.pool, 0, False)
    service._note_worker(service.pool, 0, False)
    if 0 not in supervisor.quarantined_workers():
        report.violations.append("flap drill did not quarantine worker 0")
        return
    while time.monotonic() < deadline:
        if 0 not in supervisor.quarantined_workers():
            break
        time.sleep(0.05)
    after = supervisor.counters()
    restored = (0 not in supervisor.quarantined_workers()
                and after["restores"] > before["restores"])
    report.quarantine = {
        "worker": 0,
        "restored": restored,
        "quarantines": after["quarantines"] - before["quarantines"],
        "probes": after["probes"] - before["probes"],
    }
    if not restored:
        report.violations.append(
            "canary probe did not restore the quarantined worker")


def _check_cache_corruption(service, config, plan, report, jobs,
                            deadline) -> None:
    """Corrupt a done job's cache entry, resubmit, expect an eviction
    and an equal-HPWL recompute."""
    specs = plan.specs_of("cache-corrupt")
    if not specs:
        return
    index = specs[0].job_index
    job = jobs[index]
    first = None
    for entry in service.entries():
        if entry.job.job_id == job.job_id and entry.state == "done":
            first = entry
            break
    if first is None:
        report.cache_check = {"recovered": None, "reason": "victim job "
                              "did not finish done; nothing to corrupt"}
        return
    path = corrupt_cache_entry(service.cache, job)
    if path is None:
        report.cache_check = {"recovered": None,
                              "reason": "no cache entry on disk"}
        return
    plan.record("cache-corrupt", job_id=job.job_id, path=path)
    evictions_before = service.cache.evictions
    retry = service.submit({"job": job.to_dict(), "priority": 1})
    while time.monotonic() < deadline:
        if service.get(retry.ticket).terminal:
            break
        time.sleep(0.05)
    entry = service.get(retry.ticket)
    report.tickets[retry.ticket] = entry.state
    recovered = (entry.state == "done"
                 and service.cache.evictions > evictions_before
                 and entry.result is not None
                 and first.result is not None
                 and entry.result.hpwl == first.result.hpwl)
    report.cache_check = {
        "recovered": recovered,
        "evicted": service.cache.evictions > evictions_before,
        "hpwl_first": first.result.hpwl if first.result else None,
        "hpwl_recomputed": entry.result.hpwl if entry.result else None,
    }
    if not recovered:
        report.violations.append(
            "corrupted cache entry was not evicted and recomputed to "
            "the same HPWL")


def _check_drain_shed(service, report) -> None:
    """A draining service must refuse new work with Retry-After."""
    service.supervisor.drain()
    try:
        service.submit({"job": {"design": "fft_1", "cells": 32},
                        "priority": 5})
    except BrownoutShed as err:
        report.shed = {"raised": True, "state": err.state,
                       "retry_after_s": err.retry_after}
    else:
        report.shed = {"raised": False}
        report.violations.append("draining service accepted a submit")
    status, payload = service.health()
    if status != 503 or payload["status"] != "draining":
        report.violations.append(
            f"draining /healthz answered {status}/{payload['status']}, "
            f"expected 503/draining")


def _damage_journal(path: str, plan: ServiceFaultPlan) -> Dict[str, Any]:
    """Apply the scheduled restart-time journal damage in place."""
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line]
    did: Dict[str, Any] = {}
    if plan.specs_of("journal-truncate") and lines:
        # Tear the tail record mid-write, as a crash during append would.
        torn = lines[-1][: max(1, len(lines[-1]) // 2)]
        lines = lines[:-1] + [torn]
        plan.record("journal-truncate", torn_chars=len(torn))
        did["truncated"] = True
    if plan.specs_of("journal-corrupt"):
        terminals = []
        for line in lines:
            try:
                if json.loads(line).get("op") == "terminal":
                    terminals.append(line)
            except ValueError:
                continue
        if terminals:
            # Duplicate one terminal record and interleave a partial one
            # — replay must dedupe the terminal and drop the fragment.
            lines.append('{"op": "terminal", "tick')
            lines.append(terminals[0])
            plan.record("journal-corrupt", duplicated=1, partial=1)
            did["corrupted"] = True
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    return did


def _restart_leg(config, plan, report, state_dir, wave1_tickets) -> None:
    """Damage the journal, restart the daemon on the same state dir and
    audit that the ticket table comes back consistent."""
    from repro.service.daemon import PlacementService

    journal_path = os.path.join(state_dir, "journal.jsonl")
    if not os.path.isfile(journal_path):
        report.violations.append("no journal to damage at restart")
        return
    did = _damage_journal(journal_path, plan)
    replay = read_journal(journal_path)
    service2 = PlacementService(
        state_dir, workers=config.workers,
        start_method=config.start_method,
        heartbeat_every=config.heartbeat_every,
        retry_backoff=0.05, retry_backoff_max=0.5,
        supervision=config.supervision(),
    )
    service2.start()
    try:
        deadline = time.monotonic() + config.soak_timeout
        while time.monotonic() < deadline:
            if all(e.terminal for e in service2.entries()):
                break
            time.sleep(0.05)
        entries = {e.ticket: e for e in service2.entries()}
        # Zero lost: every wave-1 ticket is terminal either in the
        # (damaged) journal or after the replay re-ran it.
        lost = []
        for ticket in wave1_tickets:
            in_journal = ticket in replay.finished
            resumed = (ticket in entries
                       and entries[ticket].terminal)
            if not in_journal and not resumed:
                lost.append(ticket)
        if lost:
            report.violations.append(
                f"tickets lost across restart: {lost}")
        not_terminal = [t for t, e in entries.items() if not e.terminal]
        if not_terminal:
            report.violations.append(
                f"restart left live tickets: {not_terminal}")
        report.restart = {
            **did,
            "dropped": service2.journal_dropped,
            "duplicates": service2.journal_duplicates,
            "resumed": len(service2.recovered),
            "lost": len(lost),
        }
        if did.get("truncated") and not service2.recovered \
                and not report.inline:
            # The torn tail was a terminal record, so its ticket must
            # have been replayed back to life and re-finished.
            report.violations.append(
                "journal truncation resumed nothing — the torn terminal "
                "was not recovered")
        for ticket, entry in entries.items():
            report.tickets[ticket] = entry.state
    finally:
        service2.stop()
