"""Progress-based liveness: hung versus slow-but-progressing.

Workers already emit per-job loop events (``loop_start`` /
``heartbeat`` / ``loop_stop``) through the
:class:`~repro.core.callbacks.QueueCallback` bridge; before this
module nothing consumed them for health.  :class:`LivenessMonitor`
folds them into a per-ticket :class:`JobLedger` and answers the only
question the daemon needs: *which running tickets made no progress for
longer than* ``hang_timeout``?  A job whose iterations keep advancing
is never flagged no matter how slow it is — slowness is the deadline's
business; the monitor only catches silence.

Heartbeat messages carry ``job_id`` but not the ticket (the GP loop
does not know about tickets), so the monitor keeps a job-id → ticket
index; :meth:`track` is called at dispatch and :meth:`forget` on every
way a ticket leaves the active table.

:class:`WorkerHealth` is the companion fleet score: an EWMA over each
worker's outcomes (success = 1, crash/hang/timeout = 0).  A score
below ``quarantine_below`` marks the worker *flapping* — the daemon
takes it out of rotation, probes it with a canary job and restores or
replaces it.  With the default ``alpha = 0.5`` a fresh worker survives
one bad outcome (score 0.5) and is quarantined on the second in a row
(0.25), while a long-healthy worker needs the same two consecutive
failures — recovery between failures pulls the score back up.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

#: Worker messages that count as forward progress for liveness.
PROGRESS_KINDS = ("loop_start", "heartbeat", "loop_stop", "recovery",
                  "diagnostic")


@dataclass
class JobLedger:
    """Progress bookkeeping for one leased ticket."""

    ticket: str
    job_id: str
    worker: int
    started: float
    last_progress: float
    iteration: int = -1
    heartbeats: int = 0

    def idle_for(self, now: float) -> float:
        return max(0.0, now - self.last_progress)


class LivenessMonitor:
    """Per-ticket progress ledgers over the existing event stream."""

    def __init__(self, hang_timeout: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive")
        self.hang_timeout = float(hang_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._ledgers: Dict[str, JobLedger] = {}
        self._ticket_of: Dict[str, str] = {}   # job_id -> ticket

    def track(self, ticket: str, job_id: str, worker: int) -> None:
        """Start watching a freshly dispatched ticket.

        Dispatch time counts as progress: a worker that never even
        reaches ``loop_start`` (hung on design load, crash-looping on
        attach) goes hung one ``hang_timeout`` after dispatch.
        """
        now = self._clock()
        with self._lock:
            self._ledgers[ticket] = JobLedger(
                ticket=ticket, job_id=job_id, worker=worker,
                started=now, last_progress=now,
            )
            self._ticket_of[job_id] = ticket

    def observe(self, message: Dict[str, Any]) -> None:
        """Fold one worker message into its ledger (unknown ids are
        ignored — late events of finished tickets are harmless)."""
        if message.get("event") not in PROGRESS_KINDS:
            return
        job_id = message.get("job_id")
        with self._lock:
            ticket = self._ticket_of.get(job_id)
            ledger = self._ledgers.get(ticket) if ticket else None
            if ledger is None:
                return
            ledger.last_progress = self._clock()
            iteration = message.get("iteration")
            if iteration is not None:
                ledger.iteration = max(ledger.iteration, int(iteration))
            if message.get("event") == "heartbeat":
                ledger.heartbeats += 1

    def touch(self, ticket: str) -> None:
        """Out-of-band progress (e.g. the worker answered ``_picked``)."""
        with self._lock:
            ledger = self._ledgers.get(ticket)
            if ledger is not None:
                ledger.last_progress = self._clock()

    def forget(self, ticket: str) -> None:
        with self._lock:
            ledger = self._ledgers.pop(ticket, None)
            if ledger is not None \
                    and self._ticket_of.get(ledger.job_id) == ticket:
                del self._ticket_of[ledger.job_id]

    # -- queries ------------------------------------------------------

    def hung(self) -> List[JobLedger]:
        """Ledgers silent for longer than ``hang_timeout``.

        A slow-but-progressing job keeps refreshing ``last_progress``
        on every heartbeat and never appears here.
        """
        now = self._clock()
        with self._lock:
            return [ledger for ledger in self._ledgers.values()
                    if ledger.idle_for(now) > self.hang_timeout]

    def ledger(self, ticket: str) -> Optional[JobLedger]:
        with self._lock:
            return self._ledgers.get(ticket)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        now = self._clock()
        with self._lock:
            return {
                ticket: {
                    "job_id": ledger.job_id,
                    "worker": ledger.worker,
                    "iteration": ledger.iteration,
                    "heartbeats": ledger.heartbeats,
                    "idle_s": round(ledger.idle_for(now), 4),
                }
                for ticket, ledger in self._ledgers.items()
            }


class WorkerHealth:
    """EWMA health score per worker (1 = healthy, 0 = dead on arrival)."""

    def __init__(self, alpha: float = 0.5,
                 quarantine_below: float = 0.35) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self.quarantine_below = float(quarantine_below)
        self._lock = threading.Lock()
        self._scores: Dict[int, float] = {}

    def record(self, worker_id: int, ok: bool) -> float:
        """Fold one outcome in; returns the updated score."""
        outcome = 1.0 if ok else 0.0
        with self._lock:
            previous = self._scores.get(worker_id, 1.0)
            score = (1.0 - self.alpha) * previous + self.alpha * outcome
            self._scores[worker_id] = score
        return score

    def score(self, worker_id: int) -> float:
        with self._lock:
            return self._scores.get(worker_id, 1.0)

    def flapping(self, worker_id: int) -> bool:
        return self.score(worker_id) < self.quarantine_below

    def reset(self, worker_id: int) -> None:
        """Fresh start after a replace/restore decision."""
        with self._lock:
            self._scores.pop(worker_id, None)

    def snapshot(self) -> Dict[int, float]:
        with self._lock:
            return {wid: round(score, 4)
                    for wid, score in self._scores.items()}
