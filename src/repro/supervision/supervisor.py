"""The daemon's supervisor: one object that owns self-healing state.

:class:`Supervisor` composes the supervision primitives for
:class:`~repro.service.daemon.PlacementService`:

* a :class:`~repro.supervision.liveness.LivenessMonitor` (hung-job
  detection feeding early preemption with checkpoint resume),
* a :class:`~repro.supervision.liveness.WorkerHealth` EWMA plus the
  quarantine ledger (out of rotation → canary probe → restore or
  replace),
* three named :class:`~repro.supervision.breakers.CircuitBreaker`\\ s —
  ``cache`` (ResultCache I/O → cache-bypass), ``design-store``
  (shared-memory publish/attach → cold-attach) and ``journal`` (fsync
  path → buffered journaling),
* a :class:`~repro.supervision.brownout.BrownoutController` shedding
  low-priority admissions while degraded.

The service state machine is derived, never stored:
``draining`` once :meth:`drain` was called, else ``degraded`` while
any breaker is non-closed or any worker is quarantined, else ``ok``.

Every state-changing decision is reported through ``on_event(kind,
job_id, **payload)`` (the daemon passes its event router), so breaker
trips, quarantines, preemptions and shed submissions are all on the
same JSONL stream as the placement events — chaos tests assert against
the stream, operators tail it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.supervision.breakers import CircuitBreaker
from repro.supervision.brownout import BrownoutController, BrownoutShed
from repro.supervision.liveness import LivenessMonitor, WorkerHealth

#: The dependencies wrapped by a breaker, in reporting order.
BREAKER_NAMES = ("cache", "design-store", "journal")


@dataclass
class SupervisionConfig:
    """Tuning knobs for the daemon's self-healing layer."""

    hang_timeout: float = 30.0       # silence before a job is hung
    preempt_retries: int = 2         # hang preemptions per ticket
    health_alpha: float = 0.5        # worker-health EWMA weight
    quarantine_below: float = 0.35   # health score that quarantines
    canary_delay: float = 0.25       # quarantine → canary probe wait
    breaker_threshold: int = 3       # consecutive failures per trip
    breaker_cooldown: float = 2.0    # open → half-open wait
    slow_op_seconds: Optional[float] = None  # I/O slower than this fails
    shed_below_priority: int = 1     # brownout: shed priorities below
    shed_retry_after: float = 2.0    # Retry-After hint for shed submits
    journal_buffer: int = 256        # degraded-journal loss window


class Supervisor:
    """Composes liveness, health, breakers and brownout for the daemon."""

    def __init__(
        self,
        config: Optional[SupervisionConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        on_event: Optional[Callable[..., Any]] = None,
    ) -> None:
        self.config = config or SupervisionConfig()
        self._clock = clock
        self._on_event = on_event
        self.liveness = LivenessMonitor(
            hang_timeout=self.config.hang_timeout, clock=clock)
        self.health = WorkerHealth(
            alpha=self.config.health_alpha,
            quarantine_below=self.config.quarantine_below)
        self.brownout = BrownoutController(
            shed_below_priority=self.config.shed_below_priority,
            retry_after=self.config.shed_retry_after)
        self.breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                name,
                failure_threshold=self.config.breaker_threshold,
                cooldown=self.config.breaker_cooldown,
                clock=clock,
                on_transition=self._breaker_transition,
            )
            for name in BREAKER_NAMES
        }
        self._lock = threading.Lock()
        self._quarantined: Dict[int, float] = {}   # worker -> probe-due ts
        self._canaries: Dict[str, int] = {}        # canary ticket -> worker
        self._canary_ordinal = 0
        self._preemptions = 0
        self._quarantines = 0
        self._probes = 0
        self._restores = 0
        self._replacements = 0

    # -- event plumbing ----------------------------------------------

    def _emit(self, kind: str, job_id: str, **payload: Any) -> None:
        if self._on_event is not None:
            self._on_event(kind, job_id, **payload)

    def _breaker_transition(self, name: str, old: str, new: str) -> None:
        self._emit("breaker", "service", name=name, old=old, new=new)

    # -- service state -------------------------------------------------

    def degraded(self) -> bool:
        if any(breaker.state != "closed"
               for breaker in self.breakers.values()):
            return True
        with self._lock:
            return bool(self._quarantined)

    def service_state(self) -> str:
        return self.brownout.state(self.degraded())

    def drain(self) -> None:
        self.brownout.drain()

    # -- admission -----------------------------------------------------

    def admit(self, priority: int, job_id: str = "?",
              tenant: str = "default") -> None:
        """Gate one submission; raises
        :class:`~repro.supervision.brownout.BrownoutShed` (and emits a
        ``shed`` event) when the brownout policy refuses it."""
        try:
            self.brownout.admit(priority, self.degraded())
        except BrownoutShed as shed:
            self._emit("shed", job_id, state=shed.state,
                       priority=priority, tenant=tenant,
                       retry_after_s=shed.retry_after)
            raise

    # -- preemption / worker outcomes ---------------------------------

    def note_preemption(self) -> None:
        with self._lock:
            self._preemptions += 1

    def note_outcome(self, worker_id: int, ok: bool) -> bool:
        """Fold one worker outcome in; True when the worker just
        crossed into flapping territory and should be quarantined."""
        self.health.record(worker_id, ok)
        if ok or not self.health.flapping(worker_id):
            return False
        with self._lock:
            return worker_id not in self._quarantined

    # -- quarantine ledger --------------------------------------------

    def begin_quarantine(self, worker_id: int) -> None:
        with self._lock:
            self._quarantined[worker_id] = (
                self._clock() + self.config.canary_delay)
            self._quarantines += 1
        self._emit("quarantine", "service", action="enter",
                   worker=worker_id,
                   score=round(self.health.score(worker_id), 4))

    def probe_due(self) -> List[int]:
        """Quarantined workers whose canary probe is due and not yet
        outstanding."""
        now = self._clock()
        with self._lock:
            probing = set(self._canaries.values())
            return [worker for worker, due in self._quarantined.items()
                    if now >= due and worker not in probing]

    def begin_probe(self, ticket: str, worker_id: int) -> None:
        with self._lock:
            self._canaries[ticket] = worker_id
            self._probes += 1
            self._canary_ordinal += 1
        self._emit("quarantine", "service", action="probe",
                   worker=worker_id, ticket=ticket)

    def next_canary_ordinal(self) -> int:
        with self._lock:
            return self._canary_ordinal

    def canary_worker(self, ticket: str) -> Optional[int]:
        with self._lock:
            return self._canaries.get(ticket)

    def outstanding_canaries(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._canaries)

    def end_quarantine(self, ticket: Optional[str], worker_id: int,
                       healthy: bool) -> None:
        """Resolve a probe: restore the worker (healthy canary) or
        count a replacement (the daemon respawns it either way)."""
        with self._lock:
            if ticket is not None:
                self._canaries.pop(ticket, None)
            self._quarantined.pop(worker_id, None)
            if healthy:
                self._restores += 1
            else:
                self._replacements += 1
        self.health.reset(worker_id)
        self._emit("quarantine", "service",
                   action="restore" if healthy else "replace",
                   worker=worker_id, ticket=ticket)

    def quarantined_workers(self) -> List[int]:
        with self._lock:
            return sorted(self._quarantined)

    # -- reporting -----------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            counters = {
                "preemptions": self._preemptions,
                "quarantines": self._quarantines,
                "probes": self._probes,
                "restores": self._restores,
                "replacements": self._replacements,
            }
        counters["breaker_trips"] = sum(
            breaker.trips for breaker in self.breakers.values())
        counters["shed"] = self.brownout.shed
        return counters

    def snapshot(self) -> Dict[str, Any]:
        return {
            "state": self.service_state(),
            "breakers": {name: breaker.to_dict()
                         for name, breaker in self.breakers.items()},
            "worker_health": self.health.snapshot(),
            "quarantined": self.quarantined_workers(),
            "liveness": self.liveness.snapshot(),
            "brownout": self.brownout.to_dict(),
            "counters": self.counters(),
        }
