"""Static timing analysis and timing-driven placement.

Placement quality ultimately matters through PPA (the paper's opening
sentence); this package supplies the classic timing-driven placement
loop on top of the Xplace engine: a topological STA over a DAG view of
the netlist (lumped cell delays + distance-linear net delays), slack and
criticality extraction, and iterative net re-weighting so the placer
contracts critical paths at a small total-wirelength cost.
"""

from repro.timing.graph import TimingGraph
from repro.timing.sta import StaResult, run_sta
from repro.timing.driven import TimingDrivenPlacer, TimingDrivenResult

__all__ = [
    "TimingGraph",
    "StaResult",
    "run_sta",
    "TimingDrivenPlacer",
    "TimingDrivenResult",
]
