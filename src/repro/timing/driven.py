"""Timing-driven placement by iterative net re-weighting.

The classic loop: place → STA → raise the weights of critical nets →
re-place.  Heavier nets contract under the WA wirelength objective, so
critical paths shorten; the re-weighting uses the standard criticality
power law  w_e = 1 + β·crit_e^k.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core import PlacementParams, XPlacer
from repro.netlist import Netlist
from repro.timing.graph import TimingGraph
from repro.timing.sta import StaResult, run_sta


def reweighted_netlist(netlist: Netlist, weights: np.ndarray) -> Netlist:
    """Copy of ``netlist`` with new net weights (same everything else)."""
    return dataclasses.replace(netlist, net_weight=np.asarray(weights, float))


@dataclass
class TimingRound:
    """Metrics of one place-STA-reweight round."""

    round_index: int
    hpwl: float
    critical_delay: float     # worst arrival time (clock-period floor)
    tns: float                # vs the round-0 period
    max_weight: float


@dataclass
class TimingDrivenResult:
    """Output of the timing-driven loop."""

    x: np.ndarray
    y: np.ndarray
    hpwl: float
    critical_delay: float
    rounds: List[TimingRound]
    sta: StaResult

    @property
    def delay_improvement(self) -> float:
        first = self.rounds[0].critical_delay
        if first <= 0:
            return 0.0
        return 1.0 - self.critical_delay / first


class TimingDrivenPlacer:
    """Iterative net-weighting timing-driven global placement."""

    def __init__(
        self,
        netlist: Netlist,
        params: Optional[PlacementParams] = None,
        rounds: int = 3,
        beta: float = 6.0,
        exponent: float = 2.0,
        cell_delay: float = 1.0,
        wire_delay_per_unit: float = 0.05,
    ) -> None:
        self.netlist = netlist
        self.params = params or PlacementParams()
        self.rounds = rounds
        self.beta = beta
        self.exponent = exponent
        self.cell_delay = cell_delay
        self.wire_delay_per_unit = wire_delay_per_unit
        self.graph = TimingGraph.from_netlist(netlist)

    # ------------------------------------------------------------------
    def run(self) -> TimingDrivenResult:
        netlist = self.netlist
        base_weights = netlist.net_weight.copy()
        weights = base_weights.copy()
        history: List[TimingRound] = []
        best = None
        reference_period = None

        from repro.wirelength import hpwl as hpwl_fn

        for round_index in range(self.rounds):
            working = (
                netlist if round_index == 0 else reweighted_netlist(netlist, weights)
            )
            gp = XPlacer(working, self.params).run()
            sta = run_sta(
                self.graph,
                gp.x,
                gp.y,
                self.cell_delay,
                self.wire_delay_per_unit,
                clock_period=reference_period,
            )
            if reference_period is None:
                reference_period = sta.clock_period
            critical = float(sta.arrival.max(initial=0.0))
            # HPWL is always reported with the *original* weights.
            true_hpwl = hpwl_fn(netlist, gp.x, gp.y)
            history.append(
                TimingRound(
                    round_index=round_index,
                    hpwl=true_hpwl,
                    critical_delay=critical,
                    tns=sta.tns,
                    max_weight=float(weights.max()),
                )
            )
            if best is None or critical < best[2]:
                best = (gp.x.copy(), gp.y.copy(), critical, true_hpwl, sta)

            crit = sta.criticality()
            weights = base_weights * (1.0 + self.beta * crit**self.exponent)

        x, y, critical, true_hpwl, sta = best
        return TimingDrivenResult(
            x=x,
            y=y,
            hpwl=true_hpwl,
            critical_delay=critical,
            rounds=history,
            sta=sta,
        )
