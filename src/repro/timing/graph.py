"""DAG view of a netlist for timing analysis.

The bookshelf-style netlists carry no pin directions, so a conventional
direction model is imposed: each net is driven by its pin on the
lowest-indexed cell and received by every other pin.  Because every
edge then goes from a lower cell index to a higher one (self-loops
dropped), the graph is acyclic by construction and cell-index order is
already a topological order — the generator's locality model makes this
a reasonable stand-in for real signal flow.

Delays: a lumped ``cell_delay`` per stage plus a net delay linear in
the driver→sink pin Manhattan distance (``wire_delay_per_unit``), the
standard lumped/Elmore-lite model timing-driven placers optimize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.netlist import Netlist


@dataclass
class TimingGraph:
    """Edge-list DAG with per-edge net annotations.

    Attributes
    ----------
    driver_pin, sink_pin : (E,) pin indices of each timing arc
    driver_cell, sink_cell : (E,) cell indices (driver < sink)
    edge_net : (E,) owning net of each arc
    """

    netlist: Netlist
    driver_pin: np.ndarray
    sink_pin: np.ndarray
    driver_cell: np.ndarray
    sink_cell: np.ndarray
    edge_net: np.ndarray

    @property
    def num_arcs(self) -> int:
        return int(self.driver_pin.shape[0])

    @staticmethod
    def from_netlist(netlist: Netlist) -> "TimingGraph":
        """Build the arc list: per net, lowest-index cell drives the rest."""
        drivers, sinks, d_cells, s_cells, nets = [], [], [], [], []
        for e in range(netlist.num_nets):
            lo, hi = netlist.net_start[e], netlist.net_start[e + 1]
            if hi - lo < 2:
                continue
            pins = np.arange(lo, hi)
            cells = netlist.pin2cell[lo:hi]
            driver_local = int(np.argmin(cells))
            driver_pin = pins[driver_local]
            driver_cell = cells[driver_local]
            for k in range(hi - lo):
                if cells[k] == driver_cell:
                    continue
                drivers.append(driver_pin)
                sinks.append(pins[k])
                d_cells.append(driver_cell)
                s_cells.append(cells[k])
                nets.append(e)
        return TimingGraph(
            netlist=netlist,
            driver_pin=np.asarray(drivers, dtype=np.int64),
            sink_pin=np.asarray(sinks, dtype=np.int64),
            driver_cell=np.asarray(d_cells, dtype=np.int64),
            sink_cell=np.asarray(s_cells, dtype=np.int64),
            edge_net=np.asarray(nets, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    def arc_delays(
        self,
        x: np.ndarray,
        y: np.ndarray,
        cell_delay: float = 1.0,
        wire_delay_per_unit: float = 0.05,
    ) -> np.ndarray:
        """Per-arc delay at placement (x, y)."""
        nl = self.netlist
        dx = np.abs(
            (x[self.driver_cell] + nl.pin_dx[self.driver_pin])
            - (x[self.sink_cell] + nl.pin_dx[self.sink_pin])
        )
        dy = np.abs(
            (y[self.driver_cell] + nl.pin_dy[self.driver_pin])
            - (y[self.sink_cell] + nl.pin_dy[self.sink_pin])
        )
        return cell_delay + wire_delay_per_unit * (dx + dy)

    def is_acyclic(self) -> bool:
        """All arcs go strictly low→high cell index (construction check)."""
        return bool(np.all(self.driver_cell < self.sink_cell))
