"""Topological static timing analysis over a :class:`TimingGraph`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.timing.graph import TimingGraph


@dataclass
class StaResult:
    """Arrival/required/slack data of one STA run.

    ``clock_period`` defaults to the worst arrival time (zero-WNS
    normalisation), so slack measures headroom against the critical
    path; pass an explicit period to measure violations against a spec.
    """

    arrival: np.ndarray          # (N,) per cell
    required: np.ndarray         # (N,) per cell
    arc_slack: np.ndarray        # (E,) per timing arc
    net_slack: np.ndarray        # (nets,) min slack over a net's arcs
    clock_period: float

    @property
    def wns(self) -> float:
        """Worst negative slack (0 when the period is met)."""
        if self.arc_slack.size == 0:
            return 0.0
        return float(min(self.arc_slack.min(), 0.0))

    @property
    def tns(self) -> float:
        """Total negative slack."""
        if self.arc_slack.size == 0:
            return 0.0
        return float(np.sum(np.minimum(self.arc_slack, 0.0)))

    @property
    def critical_arc(self) -> int:
        return int(np.argmin(self.arc_slack))

    def criticality(self) -> np.ndarray:
        """Per-net criticality in [0, 1]: 1 on the critical path."""
        if self.clock_period <= 0:
            return np.zeros_like(self.net_slack)
        crit = 1.0 - self.net_slack / self.clock_period
        return np.clip(crit, 0.0, 1.0)


def run_sta(
    graph: TimingGraph,
    x: np.ndarray,
    y: np.ndarray,
    cell_delay: float = 1.0,
    wire_delay_per_unit: float = 0.05,
    clock_period: Optional[float] = None,
) -> StaResult:
    """Arrival/required sweep (cell-index order is topological).

    Primary inputs (cells without incoming arcs) arrive at t = 0;
    primary outputs (cells without outgoing arcs) are required at the
    clock period.
    """
    netlist = graph.netlist
    n = netlist.num_cells
    delays = graph.arc_delays(x, y, cell_delay, wire_delay_per_unit)

    arrival = np.zeros(n)
    order = np.argsort(graph.sink_cell, kind="stable")
    # Forward sweep: arcs sorted by sink guarantee drivers are final
    # (driver < sink in cell index, which is the topological order).
    for k in order:
        a = arrival[graph.driver_cell[k]] + delays[k]
        if a > arrival[graph.sink_cell[k]]:
            arrival[graph.sink_cell[k]] = a

    period = float(clock_period) if clock_period is not None else float(
        arrival.max(initial=0.0)
    )

    required = np.full(n, period)
    back_order = np.argsort(-graph.driver_cell, kind="stable")
    for k in back_order:
        r = required[graph.sink_cell[k]] - delays[k]
        if r < required[graph.driver_cell[k]]:
            required[graph.driver_cell[k]] = r

    arc_slack = (
        required[graph.sink_cell] - arrival[graph.driver_cell] - delays
    )
    net_slack = np.full(netlist.num_nets, np.inf)
    np.minimum.at(net_slack, graph.edge_net, arc_slack)
    net_slack[~np.isfinite(net_slack)] = period
    return StaResult(
        arrival=arrival,
        required=required,
        arc_slack=arc_slack,
        net_slack=net_slack,
        clock_period=period,
    )
