"""Placement visualization: dependency-free SVG and ASCII rendering.

Renders placements (die, rows, macros, cells), density heat maps and
convergence traces as standalone SVG documents — the artifacts placement
papers show as figures — without requiring matplotlib.
"""

from repro.viz.svg import (
    ascii_density,
    convergence_svg,
    density_svg,
    placement_svg,
)

__all__ = ["placement_svg", "density_svg", "convergence_svg", "ascii_density"]
