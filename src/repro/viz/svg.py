"""SVG/ASCII renderers for placements, density maps and GP traces."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.recorder import Recorder
from repro.netlist import Netlist

_CELL_FILL = "#4e79a7"
_MACRO_FILL = "#59453c"
_PAD_FILL = "#e15759"
_ROW_STROKE = "#dddddd"


def _svg_document(width: float, height: float, body: List[str]) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.2f} {height:.2f}">\n'
        + "\n".join(body)
        + "\n</svg>\n"
    )


def _maybe_write(svg: str, path: Optional[str]) -> str:
    if path:
        with open(path, "w") as handle:
            handle.write(svg)
    return svg


def placement_svg(
    netlist: Netlist,
    x: np.ndarray,
    y: np.ndarray,
    path: Optional[str] = None,
    width: float = 800.0,
    draw_rows: bool = True,
    max_cells: int = 50_000,
) -> str:
    """Render a placement to SVG (returns the markup; optionally writes).

    Cells are blue, fixed macros brown, zero-area pads red dots.  The
    y axis is flipped so the origin sits bottom-left like a die plot.
    """
    region = netlist.region
    scale = width / region.width
    height = region.height * scale

    def sx(v: float) -> float:
        return (v - region.xl) * scale

    def sy(v: float) -> float:
        return height - (v - region.yl) * scale

    body = [
        f'<rect x="0" y="0" width="{width:.2f}" height="{height:.2f}" '
        f'fill="white" stroke="black" stroke-width="1"/>'
    ]
    if draw_rows:
        for row in region.rows:
            body.append(
                f'<line x1="{sx(row.xl):.2f}" y1="{sy(row.y):.2f}" '
                f'x2="{sx(row.xh):.2f}" y2="{sy(row.y):.2f}" '
                f'stroke="{_ROW_STROKE}" stroke-width="0.5"/>'
            )
    indices = np.arange(netlist.num_cells)
    if len(indices) > max_cells:
        indices = indices[:max_cells]
    for i in indices:
        w, h = netlist.cell_w[i], netlist.cell_h[i]
        cx, cy = x[i], y[i]
        if not np.isfinite(cx) or not np.isfinite(cy):
            continue
        if w <= 0 or h <= 0:
            body.append(
                f'<circle cx="{sx(cx):.2f}" cy="{sy(cy):.2f}" r="2" '
                f'fill="{_PAD_FILL}"/>'
            )
            continue
        fill = _CELL_FILL if netlist.movable[i] else _MACRO_FILL
        opacity = "0.75" if netlist.movable[i] else "0.9"
        body.append(
            f'<rect x="{sx(cx - w / 2):.2f}" y="{sy(cy + h / 2):.2f}" '
            f'width="{w * scale:.2f}" height="{h * scale:.2f}" '
            f'fill="{fill}" fill-opacity="{opacity}" stroke="none"/>'
        )
    return _maybe_write(_svg_document(width, height, body), path)


def density_svg(
    density: np.ndarray,
    path: Optional[str] = None,
    width: float = 512.0,
    max_resolution: int = 64,
) -> str:
    """Render a density map as an SVG heat map (white → dark red).

    Maps larger than ``max_resolution`` are average-pooled first to keep
    the document small.
    """
    grid = np.asarray(density, dtype=np.float64)
    m = grid.shape[0]
    if max_resolution and m > max_resolution and m % 2 == 0:
        factor = int(np.ceil(m / max_resolution))
        while m % factor != 0:
            factor += 1
        grid = grid.reshape(m // factor, factor, m // factor, factor).mean(
            axis=(1, 3)
        )
        m = grid.shape[0]
    peak = float(grid.max())
    norm = grid / peak if peak > 0 else grid
    cell = width / m
    body = []
    for i in range(m):
        for j in range(m):
            v = float(norm[i, j])
            red = 255
            other = int(255 * (1.0 - v))
            body.append(
                f'<rect x="{i * cell:.2f}" y="{(m - 1 - j) * cell:.2f}" '
                f'width="{cell:.2f}" height="{cell:.2f}" '
                f'fill="rgb({red},{other},{other})"/>'
            )
    return _maybe_write(_svg_document(width, width, body), path)


def convergence_svg(
    recorder: Recorder,
    metrics: Sequence[str] = ("hpwl", "overflow"),
    path: Optional[str] = None,
    width: float = 640.0,
    height: float = 240.0,
) -> str:
    """Plot per-iteration traces (each metric normalised to [0, 1])."""
    colors = ["#4e79a7", "#e15759", "#59a14f", "#f28e2b"]
    body = [
        f'<rect x="0" y="0" width="{width:.0f}" height="{height:.0f}" '
        f'fill="white" stroke="black"/>'
    ]
    margin = 10.0
    for k, metric in enumerate(metrics):
        trace = recorder.trace(metric)
        if len(trace) == 0:
            continue
        finite = np.where(np.isfinite(trace), trace, np.nan)
        lo = np.nanmin(finite)
        hi = np.nanmax(finite)
        span = (hi - lo) if hi > lo else 1.0
        points = []
        for i, v in enumerate(finite):
            if not np.isfinite(v):
                continue
            px = margin + (width - 2 * margin) * i / max(len(finite) - 1, 1)
            py = height - margin - (height - 2 * margin) * (v - lo) / span
            points.append(f"{px:.1f},{py:.1f}")
        color = colors[k % len(colors)]
        body.append(
            f'<polyline points="{" ".join(points)}" fill="none" '
            f'stroke="{color}" stroke-width="1.5"/>'
        )
        body.append(
            f'<text x="{margin + 4:.0f}" y="{14 + 14 * k:.0f}" '
            f'fill="{color}" font-size="12">{metric}</text>'
        )
    return _maybe_write(_svg_document(width, height, body), path)


_ASCII_RAMP = " .:-=+*#%@"


def ascii_density(density: np.ndarray, width: int = 48) -> str:
    """Terminal-friendly density heat map (for CLI / debugging)."""
    grid = np.asarray(density, dtype=np.float64)
    m = grid.shape[0]
    step = max(1, m // width)
    pooled = grid[: (m // step) * step, : (m // step) * step]
    pooled = pooled.reshape(m // step, step, m // step, step).mean(axis=(1, 3))
    peak = pooled.max()
    if peak <= 0:
        peak = 1.0
    levels = np.clip(
        (pooled / peak * (len(_ASCII_RAMP) - 1)).astype(int),
        0,
        len(_ASCII_RAMP) - 1,
    )
    # Rows printed top-to-bottom: j decreasing.
    lines = []
    for j in range(levels.shape[1] - 1, -1, -1):
        lines.append("".join(_ASCII_RAMP[v] for v in levels[:, j]))
    return "\n".join(lines)
