"""Wirelength objectives: HPWL, weighted-average (WA), log-sum-exp.

The central object is :class:`WirelengthOp`, which implements the paper's
*operator combination* (Section 3.1.1): per-net min/max positions are
computed once and shared between the HPWL metric, the stable WA objective
(Eq. 6) and its analytic gradient, all emitted by one fused kernel.
Stand-alone functions are kept for the ablation baseline that recomputes
min/max per operator.
"""

from repro.wirelength.hpwl import hpwl, hpwl_per_net
from repro.wirelength.wa import WirelengthOp, WAResult, wa_wirelength_and_grad
from repro.wirelength.lse import lse_wirelength

__all__ = [
    "hpwl",
    "hpwl_per_net",
    "WirelengthOp",
    "WAResult",
    "wa_wirelength_and_grad",
    "lse_wirelength",
]
