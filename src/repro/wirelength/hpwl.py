"""Half-perimeter wirelength (Eq. 2)."""

from __future__ import annotations

import numpy as np

from repro.netlist import Netlist
from repro.wirelength.segments import segment_max, segment_min


def hpwl_per_net(netlist: Netlist, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Unweighted HPWL of every net (0 for nets with <2 pins)."""
    px, py = netlist.pin_positions(x, y)
    spans_x = segment_max(px, netlist.net_start) - segment_min(px, netlist.net_start)
    spans_y = segment_max(py, netlist.net_start) - segment_min(py, netlist.net_start)
    spans = spans_x + spans_y
    return np.where(netlist.net_mask, spans, 0.0)


def hpwl(netlist: Netlist, x: np.ndarray, y: np.ndarray) -> float:
    """Total net-weighted HPWL of the placement ``(x, y)`` (cell centers)."""
    return float(np.sum(hpwl_per_net(netlist, x, y) * netlist.net_weight))
