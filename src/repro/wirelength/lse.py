"""Log-sum-exp wirelength (the classic NTUPlace3-style smooth objective).

Included as an alternative objective for extension experiments; unlike WA
it over-approximates HPWL (LSE ≥ HPWL ≥ WA), which tests exploit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.netlist import Netlist
from repro.ops import profiled
from repro.wirelength.segments import segment_max, segment_min, segment_sum


def lse_wirelength(
    netlist: Netlist, x: np.ndarray, y: np.ndarray, gamma: float
) -> float:
    """Total net-weighted log-sum-exp wirelength.

    Per net and axis: γ·log Σ e^{x/γ} + γ·log Σ e^{-x/γ}, computed with
    max/min shifts for numerical stability.
    """
    px, py = netlist.pin_positions(x, y)
    total = _lse_axis(px, netlist, gamma) + _lse_axis(py, netlist, gamma)
    return float(total)


def _lse_axis(pin_pos: np.ndarray, netlist: Netlist, gamma: float) -> float:
    net_start = netlist.net_start
    pin2net = netlist.pin2net
    net_max = segment_max(pin_pos, net_start)
    net_min = segment_min(pin_pos, net_start)
    profiled("lse_exp", 2)
    exp_plus = np.exp((pin_pos - net_max[pin2net]) / gamma)
    exp_minus = np.exp((net_min[pin2net] - pin_pos) / gamma)
    sum_plus = segment_sum(exp_plus, net_start)
    sum_minus = segment_sum(exp_minus, net_start)
    safe_plus = np.where(sum_plus > 0, sum_plus, 1.0)
    safe_minus = np.where(sum_minus > 0, sum_minus, 1.0)
    per_net = (
        net_max - net_min + gamma * (np.log(safe_plus) + np.log(safe_minus))
    )
    weights = netlist.net_weight * netlist.net_mask
    return float(np.sum(np.where(netlist.net_mask, per_net, 0.0) * weights))
