"""Per-net segment reductions over the pin-grouped-by-net CSR layout.

These helpers are the NumPy equivalent of the per-net CUDA reduction
kernels: given per-pin values and the ``net_start`` offsets, they reduce
each net's contiguous slice.  Empty nets are tolerated (their reduction
output is unspecified and must be masked by the caller via ``net_mask``).

All three reductions accept an optional ``out=`` destination plus
precomputed ``starts``/``empty`` vectors so workspace-backed callers
(:class:`repro.wirelength.wa.WirelengthOp`) can run the steady-state
loop without allocating; the results are bit-identical to the
allocating spelling because ``ufunc.reduceat`` performs the same
reduction regardless of where it writes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ops import profiled


def _safe_starts(net_start: np.ndarray, num_values: int) -> np.ndarray:
    """reduceat start indices clipped so empty trailing nets don't IndexError."""
    starts = net_start[:-1]
    if num_values == 0:
        return starts
    return np.minimum(starts, num_values - 1)


def segment_max(
    values: np.ndarray,
    net_start: np.ndarray,
    out: Optional[np.ndarray] = None,
    starts: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-net maximum of ``values`` (undefined for empty nets)."""
    profiled("segment_max")
    if values.size == 0:
        if out is not None:
            out.fill(0)
            return out
        return np.zeros(len(net_start) - 1, dtype=values.dtype)
    if starts is None:
        starts = _safe_starts(net_start, values.size)
    if out is None:
        return np.maximum.reduceat(values, starts)
    np.maximum.reduceat(values, starts, out=out)
    return out


def segment_min(
    values: np.ndarray,
    net_start: np.ndarray,
    out: Optional[np.ndarray] = None,
    starts: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-net minimum of ``values`` (undefined for empty nets)."""
    profiled("segment_min")
    if values.size == 0:
        if out is not None:
            out.fill(0)
            return out
        return np.zeros(len(net_start) - 1, dtype=values.dtype)
    if starts is None:
        starts = _safe_starts(net_start, values.size)
    if out is None:
        return np.minimum.reduceat(values, starts)
    np.minimum.reduceat(values, starts, out=out)
    return out


def segment_sum(
    values: np.ndarray,
    net_start: np.ndarray,
    out: Optional[np.ndarray] = None,
    starts: Optional[np.ndarray] = None,
    empty: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-net sum of ``values`` (0 for empty nets)."""
    profiled("segment_sum")
    num_nets = len(net_start) - 1
    if values.size == 0:
        if out is not None:
            out.fill(0)
            return out
        return np.zeros(num_nets, dtype=values.dtype)
    if starts is None:
        starts = _safe_starts(net_start, values.size)
    if empty is None:
        empty = np.diff(net_start) == 0
    if out is None:
        result = np.add.reduceat(values, starts)
        # reduceat yields values[start] for empty segments; zero them.
        if np.any(empty):
            result = np.where(empty, 0.0, result)
        return result
    np.add.reduceat(values, starts, out=out)
    if np.any(empty):
        out[empty] = 0.0
    return out


def scatter_to_cells(
    pin_values: np.ndarray, pin2cell: np.ndarray, num_cells: int
) -> np.ndarray:
    """Accumulate per-pin values onto their owner cells."""
    profiled("scatter_to_cells")
    return np.bincount(pin2cell, weights=pin_values, minlength=num_cells)
