"""Per-net segment reductions over the pin-grouped-by-net CSR layout.

These helpers are the NumPy equivalent of the per-net CUDA reduction
kernels: given per-pin values and the ``net_start`` offsets, they reduce
each net's contiguous slice.  Empty nets are tolerated (their reduction
output is unspecified and must be masked by the caller via ``net_mask``).
"""

from __future__ import annotations

import numpy as np

from repro.ops import profiled


def _safe_starts(net_start: np.ndarray, num_values: int) -> np.ndarray:
    """reduceat start indices clipped so empty trailing nets don't IndexError."""
    starts = net_start[:-1]
    if num_values == 0:
        return starts
    return np.minimum(starts, num_values - 1)


def segment_max(values: np.ndarray, net_start: np.ndarray) -> np.ndarray:
    """Per-net maximum of ``values`` (undefined for empty nets)."""
    profiled("segment_max")
    if values.size == 0:
        return np.zeros(len(net_start) - 1, dtype=values.dtype)
    return np.maximum.reduceat(values, _safe_starts(net_start, values.size))


def segment_min(values: np.ndarray, net_start: np.ndarray) -> np.ndarray:
    """Per-net minimum of ``values`` (undefined for empty nets)."""
    profiled("segment_min")
    if values.size == 0:
        return np.zeros(len(net_start) - 1, dtype=values.dtype)
    return np.minimum.reduceat(values, _safe_starts(net_start, values.size))


def segment_sum(values: np.ndarray, net_start: np.ndarray) -> np.ndarray:
    """Per-net sum of ``values`` (0 for empty nets)."""
    profiled("segment_sum")
    num_nets = len(net_start) - 1
    if values.size == 0:
        return np.zeros(num_nets, dtype=values.dtype)
    out = np.add.reduceat(values, _safe_starts(net_start, values.size))
    # reduceat yields values[start] for empty segments; zero them.
    empty = np.diff(net_start) == 0
    if np.any(empty):
        out = np.where(empty, 0.0, out)
    return out


def scatter_to_cells(
    pin_values: np.ndarray, pin2cell: np.ndarray, num_cells: int
) -> np.ndarray:
    """Accumulate per-pin values onto their owner cells."""
    profiled("scatter_to_cells")
    return np.bincount(pin2cell, weights=pin_values, minlength=num_cells)
