"""Weighted-average wirelength: stable objective (Eq. 6) + analytic gradient.

The combined operator (Section 3.1.1) computes, in one pass per axis:

* per-net max/min pin positions (shared sub-expression),
* the numerically stable WA objective,
* its closed-form gradient with respect to cell positions,
* the exact HPWL metric.

The max/min shift in Eq. 6 is treated as a constant when differentiating,
matching the ePlace/DREAMPlace gradient.  Per net, the WA gradient entries
sum to zero (a property test checks this), so spread-out nets feel no net
translation force.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.netlist import Netlist
from repro.ops import profiled
from repro.wirelength.segments import (
    scatter_to_cells,
    segment_max,
    segment_min,
    segment_sum,
)


@dataclass
class WAResult:
    """Output of one combined wirelength evaluation."""

    wa: float
    hpwl: float
    grad_x: np.ndarray
    grad_y: np.ndarray


class WirelengthOp:
    """Fused WA-wirelength / WA-gradient / HPWL operator for one netlist.

    Parameters
    ----------
    netlist : the circuit
    combined : when True (Xplace mode), per-net min/max are computed once
        and shared by the objective, gradient and HPWL.  When False
        (ablation mode, "OC off"), HPWL re-reduces min/max separately,
        mimicking placers that dispatch an independent HPWL kernel.
    """

    def __init__(self, netlist: Netlist, combined: bool = True) -> None:
        self.netlist = netlist
        self.combined = combined
        self._weights = netlist.net_weight * netlist.net_mask

    # ------------------------------------------------------------------
    def __call__(self, x: np.ndarray, y: np.ndarray, gamma: float) -> WAResult:
        """Evaluate WA wirelength, its gradient and HPWL at ``(x, y)``."""
        netlist = self.netlist
        px, py = netlist.pin_positions(x, y)
        profiled("pin_positions", 2)

        wa_x, hpwl_x, pin_grad_x = _wa_axis(
            px, netlist, gamma, self._weights, reuse_minmax=self.combined
        )
        wa_y, hpwl_y, pin_grad_y = _wa_axis(
            py, netlist, gamma, self._weights, reuse_minmax=self.combined
        )
        grad_x = scatter_to_cells(pin_grad_x, netlist.pin2cell, netlist.num_cells)
        grad_y = scatter_to_cells(pin_grad_y, netlist.pin2cell, netlist.num_cells)
        return WAResult(
            wa=float(wa_x + wa_y),
            hpwl=float(hpwl_x + hpwl_y),
            grad_x=grad_x,
            grad_y=grad_y,
        )


def _wa_axis(
    pin_pos: np.ndarray,
    netlist: Netlist,
    gamma: float,
    weights: np.ndarray,
    reuse_minmax: bool,
) -> Tuple[float, float, np.ndarray]:
    """WA objective/HPWL/per-pin gradient along one axis.

    Returns (weighted WA total, weighted HPWL total, per-pin gradient).
    """
    net_start = netlist.net_start
    pin2net = netlist.pin2net

    net_max = segment_max(pin_pos, net_start)
    net_min = segment_min(pin_pos, net_start)

    if reuse_minmax:
        spans = net_max - net_min
    else:
        # "OC off": an independent HPWL kernel recomputes the reductions.
        spans = segment_max(pin_pos, net_start) - segment_min(pin_pos, net_start)
    hpwl_total = float(np.sum(np.where(netlist.net_mask, spans, 0.0) * weights))

    profiled("wa_exp", 2)
    exp_plus = np.exp((pin_pos - net_max[pin2net]) / gamma)
    exp_minus = np.exp((net_min[pin2net] - pin_pos) / gamma)

    sum_plus = segment_sum(exp_plus, net_start)
    sum_minus = segment_sum(exp_minus, net_start)
    sum_xplus = segment_sum(pin_pos * exp_plus, net_start)
    sum_xminus = segment_sum(pin_pos * exp_minus, net_start)

    safe_plus = np.where(sum_plus > 0, sum_plus, 1.0)
    safe_minus = np.where(sum_minus > 0, sum_minus, 1.0)
    wa_per_net = sum_xplus / safe_plus - sum_xminus / safe_minus
    wa_total = float(np.sum(np.where(netlist.net_mask, wa_per_net, 0.0) * weights))

    # Per-pin gradient (shift treated as constant):
    #   d(WA+)/dx_k = b+_k [ (1 + x_k/γ) c+  - d+/γ ] / c+²
    #   d(WA-)/dx_k = b-_k [ (1 - x_k/γ) c-  + d-/γ ] / c-²
    profiled("wa_grad", 2)
    inv_gamma = 1.0 / gamma
    c_plus = safe_plus[pin2net]
    c_minus = safe_minus[pin2net]
    d_plus = sum_xplus[pin2net]
    d_minus = sum_xminus[pin2net]
    grad_plus = exp_plus * ((1.0 + pin_pos * inv_gamma) * c_plus - d_plus * inv_gamma)
    grad_plus /= c_plus * c_plus
    grad_minus = exp_minus * ((1.0 - pin_pos * inv_gamma) * c_minus + d_minus * inv_gamma)
    grad_minus /= c_minus * c_minus
    pin_grad = (grad_plus - grad_minus) * weights[pin2net]
    return wa_total, hpwl_total, pin_grad


def wa_wirelength_and_grad(
    netlist: Netlist, x: np.ndarray, y: np.ndarray, gamma: float
) -> WAResult:
    """One-shot functional wrapper around :class:`WirelengthOp`."""
    return WirelengthOp(netlist)(x, y, gamma)
