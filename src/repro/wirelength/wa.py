"""Weighted-average wirelength: stable objective (Eq. 6) + analytic gradient.

The combined operator (Section 3.1.1) computes, in one pass per axis:

* per-net max/min pin positions (shared sub-expression),
* the numerically stable WA objective,
* its closed-form gradient with respect to cell positions,
* the exact HPWL metric.

The max/min shift in Eq. 6 is treated as a constant when differentiating,
matching the ePlace/DREAMPlace gradient.  Per net, the WA gradient entries
sum to zero (a property test checks this), so spread-out nets feel no net
translation force.

With an attached :class:`~repro.perf.workspace.Workspace` the operator
runs the same arithmetic through preallocated arena buffers (``wa.*``)
via ``out=``: every ufunc performs the identical elementwise/reduction
computation, so results are bit-identical to the allocating fallback
while the steady-state loop performs zero allocations for the WA
temporaries.  The x and y axes deliberately share one buffer set — the
x-axis pin gradient is scattered onto cells before the y-axis reuses
its arena slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dtypes import BOOL
from repro.netlist import Netlist
from repro.ops import profiled, timed
from repro.perf.workspace import Workspace
from repro.wirelength.segments import (
    _safe_starts,
    scatter_to_cells,
    segment_max,
    segment_min,
    segment_sum,
)


@dataclass
class WAResult:
    """Output of one combined wirelength evaluation."""

    wa: float
    hpwl: float
    grad_x: np.ndarray
    grad_y: np.ndarray


class WirelengthOp:
    """Fused WA-wirelength / WA-gradient / HPWL operator for one netlist.

    Parameters
    ----------
    netlist : the circuit
    combined : when True (Xplace mode), per-net min/max are computed once
        and shared by the objective, gradient and HPWL.  When False
        (ablation mode, "OC off"), HPWL re-reduces min/max separately,
        mimicking placers that dispatch an independent HPWL kernel.
    workspace : optional buffer arena.  When attached, all WA
        temporaries live in reused ``wa.*`` buffers (bit-identical
        results, no steady-state allocations).  ``None`` keeps the
        plain allocating behaviour.
    """

    def __init__(
        self,
        netlist: Netlist,
        combined: bool = True,
        workspace: Optional[Workspace] = None,
    ) -> None:
        self.netlist = netlist
        self.combined = combined
        self.workspace = workspace
        self._weights = netlist.net_weight * netlist.net_mask
        # Gather-once satellites: these are loop-invariant, so hoisting
        # them out of _wa_axis removes two pin-sized gathers (and a
        # mask negation) from every iteration on both code paths.
        self._pin_weights = self._weights[netlist.pin2net]
        self._unmask = ~netlist.net_mask
        self._any_unmask = bool(np.any(self._unmask))
        num_pins = int(netlist.pin2net.shape[0])
        self._num_pins = num_pins
        self._num_nets = len(netlist.net_start) - 1
        self._starts = _safe_starts(netlist.net_start, num_pins)
        self._empty = np.diff(netlist.net_start) == 0

    def attach_workspace(self, workspace: Optional[Workspace]) -> None:
        """Switch the operator onto (or off) an arena after construction."""
        self.workspace = workspace

    # ------------------------------------------------------------------
    def __call__(self, x: np.ndarray, y: np.ndarray, gamma: float) -> WAResult:
        """Evaluate WA wirelength, its gradient and HPWL at ``(x, y)``."""
        with timed("wirelength"):
            netlist = self.netlist
            if self.workspace is not None and self._num_pins > 0:
                # Arena pin positions: take+add ≡ fancy-index + add.
                ws = self.workspace
                px = ws.get("wa.px", self._num_pins)
                py = ws.get("wa.py", self._num_pins)
                np.take(x, netlist.pin2cell, out=px)
                np.add(px, netlist.pin_dx, out=px)
                np.take(y, netlist.pin2cell, out=py)
                np.add(py, netlist.pin_dy, out=py)
            else:
                px, py = netlist.pin_positions(x, y)
            profiled("pin_positions", 2)

            if self.workspace is not None and self._num_pins > 0:
                wa_x, hpwl_x, pin_grad_x = self._wa_axis_ws(px, gamma)
                grad_x = scatter_to_cells(
                    pin_grad_x, netlist.pin2cell, netlist.num_cells
                )
                wa_y, hpwl_y, pin_grad_y = self._wa_axis_ws(py, gamma)
                grad_y = scatter_to_cells(
                    pin_grad_y, netlist.pin2cell, netlist.num_cells
                )
            else:
                wa_x, hpwl_x, pin_grad_x = _wa_axis(
                    px,
                    netlist,
                    gamma,
                    self._weights,
                    self._pin_weights,
                    reuse_minmax=self.combined,
                    starts=self._starts,
                    empty=self._empty,
                )
                wa_y, hpwl_y, pin_grad_y = _wa_axis(
                    py,
                    netlist,
                    gamma,
                    self._weights,
                    self._pin_weights,
                    reuse_minmax=self.combined,
                    starts=self._starts,
                    empty=self._empty,
                )
                grad_x = scatter_to_cells(
                    pin_grad_x, netlist.pin2cell, netlist.num_cells
                )
                grad_y = scatter_to_cells(
                    pin_grad_y, netlist.pin2cell, netlist.num_cells
                )
            return WAResult(
                wa=float(wa_x + wa_y),
                hpwl=float(hpwl_x + hpwl_y),
                grad_x=grad_x,
                grad_y=grad_y,
            )

    # ------------------------------------------------------------------
    def _masked_weighted_sum(self, values: np.ndarray) -> float:
        """``sum(where(net_mask, values, 0) * weights)`` via arena scratch.

        copy + masked-zero + multiply reproduces ``np.where`` bit-for-bit
        (same elementwise values, same pairwise summation order).
        """
        ws = self.workspace
        masked = ws.get("wa.masked", values.shape)
        np.copyto(masked, values)
        if self._any_unmask:
            masked[self._unmask] = 0.0
        np.multiply(masked, self._weights, out=masked)
        return float(np.sum(masked))

    def _wa_axis_ws(
        self, pin_pos: np.ndarray, gamma: float
    ) -> Tuple[float, float, np.ndarray]:
        """Workspace twin of :func:`_wa_axis` — same math, ``out=`` buffers."""
        ws = self.workspace
        netlist = self.netlist
        net_start = netlist.net_start
        pin2net = netlist.pin2net
        nn = self._num_nets
        npin = self._num_pins
        starts = self._starts
        empty = self._empty

        net_max = segment_max(
            pin_pos, net_start, out=ws.get("wa.net_max", nn), starts=starts
        )
        net_min = segment_min(
            pin_pos, net_start, out=ws.get("wa.net_min", nn), starts=starts
        )

        spans = ws.get("wa.spans", nn)
        if self.combined:
            np.subtract(net_max, net_min, out=spans)
        else:
            # "OC off": an independent HPWL kernel recomputes the reductions.
            hmax = segment_max(
                pin_pos, net_start, out=ws.get("wa.hmax", nn), starts=starts
            )
            hmin = segment_min(
                pin_pos, net_start, out=ws.get("wa.hmin", nn), starts=starts
            )
            np.subtract(hmax, hmin, out=spans)
        hpwl_total = self._masked_weighted_sum(spans)

        profiled("wa_exp", 2)
        gat = ws.get("wa.gat", npin)
        exp_plus = ws.get("wa.exp_plus", npin)
        np.take(net_max, pin2net, out=gat)
        np.subtract(pin_pos, gat, out=exp_plus)
        np.divide(exp_plus, gamma, out=exp_plus)
        np.exp(exp_plus, out=exp_plus)
        exp_minus = ws.get("wa.exp_minus", npin)
        np.take(net_min, pin2net, out=gat)
        np.subtract(gat, pin_pos, out=exp_minus)
        np.divide(exp_minus, gamma, out=exp_minus)
        np.exp(exp_minus, out=exp_minus)

        xe = ws.get("wa.xe", npin)
        sum_plus = segment_sum(
            exp_plus, net_start, out=ws.get("wa.sum_plus", nn),
            starts=starts, empty=empty,
        )
        sum_minus = segment_sum(
            exp_minus, net_start, out=ws.get("wa.sum_minus", nn),
            starts=starts, empty=empty,
        )
        np.multiply(pin_pos, exp_plus, out=xe)
        sum_xplus = segment_sum(
            xe, net_start, out=ws.get("wa.sum_xplus", nn),
            starts=starts, empty=empty,
        )
        np.multiply(pin_pos, exp_minus, out=xe)
        sum_xminus = segment_sum(
            xe, net_start, out=ws.get("wa.sum_xminus", nn),
            starts=starts, empty=empty,
        )

        # safe_* = where(sum_* > 0, sum_*, 1.0), spelled as copy + select
        # on the negated predicate so NaN handling matches np.where.
        nmask = ws.get("wa.nmask", nn, BOOL)
        safe_plus = ws.get("wa.safe_plus", nn)
        np.copyto(safe_plus, sum_plus)
        np.greater(sum_plus, 0.0, out=nmask)
        np.logical_not(nmask, out=nmask)
        safe_plus[nmask] = 1.0
        safe_minus = ws.get("wa.safe_minus", nn)
        np.copyto(safe_minus, sum_minus)
        np.greater(sum_minus, 0.0, out=nmask)
        np.logical_not(nmask, out=nmask)
        safe_minus[nmask] = 1.0

        per_net = ws.get("wa.per_net", nn)
        tnet = ws.get("wa.tnet", nn)
        np.divide(sum_xplus, safe_plus, out=per_net)
        np.divide(sum_xminus, safe_minus, out=tnet)
        np.subtract(per_net, tnet, out=per_net)
        wa_total = self._masked_weighted_sum(per_net)

        # Per-pin gradient (shift treated as constant):
        #   d(WA+)/dx_k = b+_k [ (1 + x_k/γ) c+  - d+/γ ] / c+²
        #   d(WA-)/dx_k = b-_k [ (1 - x_k/γ) c-  + d-/γ ] / c-²
        profiled("wa_grad", 2)
        inv_gamma = 1.0 / gamma
        pt = ws.get("wa.pt", npin)
        pc = ws.get("wa.pc", npin)
        pd = ws.get("wa.pd", npin)
        gp = ws.get("wa.gp", npin)
        np.multiply(pin_pos, inv_gamma, out=pt)
        np.add(pt, 1.0, out=pt)
        np.take(safe_plus, pin2net, out=pc)
        np.take(sum_xplus, pin2net, out=pd)
        np.multiply(pt, pc, out=gp)
        np.multiply(pd, inv_gamma, out=pd)
        np.subtract(gp, pd, out=gp)
        np.multiply(exp_plus, gp, out=gp)
        np.multiply(pc, pc, out=pc)
        np.divide(gp, pc, out=gp)

        gm = ws.get("wa.gm", npin)
        np.multiply(pin_pos, inv_gamma, out=pt)
        np.subtract(1.0, pt, out=pt)
        np.take(safe_minus, pin2net, out=pc)
        np.take(sum_xminus, pin2net, out=pd)
        np.multiply(pt, pc, out=gm)
        np.multiply(pd, inv_gamma, out=pd)
        np.add(gm, pd, out=gm)
        np.multiply(exp_minus, gm, out=gm)
        np.multiply(pc, pc, out=pc)
        np.divide(gm, pc, out=gm)

        pin_grad = ws.get("wa.pin_grad", npin)
        np.subtract(gp, gm, out=pin_grad)
        np.multiply(pin_grad, self._pin_weights, out=pin_grad)
        return wa_total, hpwl_total, pin_grad


def _wa_axis(
    pin_pos: np.ndarray,
    netlist: Netlist,
    gamma: float,
    weights: np.ndarray,
    pin_weights: Optional[np.ndarray] = None,
    reuse_minmax: bool = True,
    starts: Optional[np.ndarray] = None,
    empty: Optional[np.ndarray] = None,
) -> Tuple[float, float, np.ndarray]:
    """WA objective/HPWL/per-pin gradient along one axis.

    Returns (weighted WA total, weighted HPWL total, per-pin gradient).
    """
    net_start = netlist.net_start
    pin2net = netlist.pin2net
    if pin_weights is None:
        pin_weights = weights[pin2net]

    net_max = segment_max(pin_pos, net_start, starts=starts)
    net_min = segment_min(pin_pos, net_start, starts=starts)

    if reuse_minmax:
        spans = net_max - net_min
    else:
        # "OC off": an independent HPWL kernel recomputes the reductions.
        spans = segment_max(pin_pos, net_start, starts=starts) - segment_min(
            pin_pos, net_start, starts=starts
        )
    hpwl_total = float(np.sum(np.where(netlist.net_mask, spans, 0.0) * weights))

    profiled("wa_exp", 2)
    exp_plus = np.exp((pin_pos - net_max[pin2net]) / gamma)
    exp_minus = np.exp((net_min[pin2net] - pin_pos) / gamma)

    sum_plus = segment_sum(exp_plus, net_start, starts=starts, empty=empty)
    sum_minus = segment_sum(exp_minus, net_start, starts=starts, empty=empty)
    sum_xplus = segment_sum(pin_pos * exp_plus, net_start, starts=starts, empty=empty)
    sum_xminus = segment_sum(pin_pos * exp_minus, net_start, starts=starts, empty=empty)

    safe_plus = np.where(sum_plus > 0, sum_plus, 1.0)
    safe_minus = np.where(sum_minus > 0, sum_minus, 1.0)
    wa_per_net = sum_xplus / safe_plus - sum_xminus / safe_minus
    wa_total = float(np.sum(np.where(netlist.net_mask, wa_per_net, 0.0) * weights))

    # Per-pin gradient (shift treated as constant):
    #   d(WA+)/dx_k = b+_k [ (1 + x_k/γ) c+  - d+/γ ] / c+²
    #   d(WA-)/dx_k = b-_k [ (1 - x_k/γ) c-  + d-/γ ] / c-²
    profiled("wa_grad", 2)
    inv_gamma = 1.0 / gamma
    c_plus = safe_plus[pin2net]
    c_minus = safe_minus[pin2net]
    d_plus = sum_xplus[pin2net]
    d_minus = sum_xminus[pin2net]
    grad_plus = exp_plus * ((1.0 + pin_pos * inv_gamma) * c_plus - d_plus * inv_gamma)
    grad_plus /= c_plus * c_plus
    grad_minus = exp_minus * ((1.0 - pin_pos * inv_gamma) * c_minus + d_minus * inv_gamma)
    grad_minus /= c_minus * c_minus
    pin_grad = (grad_plus - grad_minus) * pin_weights
    return wa_total, hpwl_total, pin_grad


def wa_wirelength_and_grad(
    netlist: Netlist, x: np.ndarray, y: np.ndarray, gamma: float
) -> WAResult:
    """One-shot functional wrapper around :class:`WirelengthOp`."""
    return WirelengthOp(netlist)(x, y, gamma)
