"""WA wirelength spelled as fine-grained autograd operators.

This is the "operator reduction OFF" configuration of Section 3.1.3:
instead of one fused kernel producing objective + gradient + HPWL, the
objective is a graph of small tape operators (gather, exp, segment-sum,
divide, …) differentiated by the autograd engine, and HPWL is computed
by a separate operator.  Numerically identical to
:class:`~repro.wirelength.wa.WirelengthOp`; only the dispatch structure
differs — which is exactly what the Table 3 ablation measures.
"""

from __future__ import annotations

import numpy as np
from repro.dtypes import FLOAT

from repro.autograd import Tensor, gather_cells, segment_sum
from repro.netlist import Netlist
from repro.wirelength.hpwl import hpwl as hpwl_fn
from repro.wirelength.segments import segment_max, segment_min
from repro.wirelength.wa import WAResult


class AutogradWirelengthOp:
    """Drop-in WirelengthOp replacement routed through the tape."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._weights = netlist.net_weight * netlist.net_mask
        self._empty_guard = (~netlist.net_mask).astype(FLOAT)

    def __call__(self, x: np.ndarray, y: np.ndarray, gamma: float) -> WAResult:
        tx = Tensor(x, requires_grad=True)
        ty = Tensor(y, requires_grad=True)
        wa = self._axis(tx, self.netlist.pin_dx, gamma) + self._axis(
            ty, self.netlist.pin_dy, gamma
        )
        wa.backward()
        # Separate HPWL operator: recomputes the per-net reductions.
        hpwl_value = hpwl_fn(self.netlist, x, y)
        return WAResult(
            wa=float(wa.data),
            hpwl=hpwl_value,
            grad_x=tx.grad,
            grad_y=ty.grad,
        )

    def _axis(self, pos: Tensor, offsets: np.ndarray, gamma: float) -> Tensor:
        nl = self.netlist
        pins = gather_cells(pos, nl.pin2cell, offsets)
        net_max = segment_max(pins.data, nl.net_start)
        net_min = segment_min(pins.data, nl.net_start)
        inv_gamma = 1.0 / gamma
        ep = ((pins - net_max[nl.pin2net]) * inv_gamma).exp()
        em = ((Tensor(net_min[nl.pin2net]) - pins) * inv_gamma).exp()
        cp = segment_sum(ep, nl.net_start) + self._empty_guard
        cm = segment_sum(em, nl.net_start) + self._empty_guard
        dp = segment_sum(pins * ep, nl.net_start)
        dm = segment_sum(pins * em, nl.net_start)
        per_net = dp / cp - dm / cm
        return (Tensor(self._weights) * per_net).sum()
