"""Importable pipeline factories for runtime tests.

The worker pool runs jobs in subprocesses that resolve
``job.pipeline = "module:function"`` via import, so the fault-injection
stages used by the pool tests must live in a real module (this one),
not in a test body.  ``fake_pipeline`` is also the cheap stand-in for
a full placement flow: it "places" every movable cell near the die
center with a seed-dependent jitter, so pool tests don't pay for GP.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

from repro.pipeline import Pipeline, Stage
from repro.wirelength import hpwl


class FakePlaceStage(Stage):
    """Instant 'placement': center + seeded jitter, HPWL metric."""

    name = "gp"

    def execute(self, ctx):
        netlist = ctx.netlist
        region = netlist.region
        cx = (region.xl + region.xh) / 2.0
        cy = (region.yl + region.yh) / 2.0
        x = np.where(np.isfinite(netlist.fixed_x), netlist.fixed_x, cx)
        y = np.where(np.isfinite(netlist.fixed_y), netlist.fixed_y, cy)
        rng = np.random.default_rng(ctx.params.seed)
        movable = netlist.movable
        span_x = (region.xh - region.xl) * 0.25
        span_y = (region.yh - region.yl) * 0.25
        x[movable] = cx + rng.uniform(-span_x, span_x, movable.sum())
        y[movable] = cy + rng.uniform(-span_y, span_y, movable.sum())
        ctx.x, ctx.y = x, y
        return {"gp_hpwl": float(hpwl(netlist, x, y))}


class SleepStage(Stage):
    """Blocks long enough that any sane test timeout fires first."""

    name = "sleep"

    def execute(self, ctx):
        time.sleep(60.0)
        return {}


class CrashStage(Stage):
    """Deterministic stage failure."""

    name = "crash"

    def execute(self, ctx):
        raise ValueError("injected stage crash")


class KillStage(Stage):
    """Dies the hard way: SIGKILL, no result, no cleanup."""

    name = "kill"

    def execute(self, ctx):
        os.kill(os.getpid(), signal.SIGKILL)


def fake_pipeline(job):
    return Pipeline([FakePlaceStage()], name="fake-flow")


def sleepy_pipeline(job):
    return Pipeline([SleepStage()], name="sleepy-flow")


def crashy_pipeline(job):
    return Pipeline([FakePlaceStage(), CrashStage()], name="crashy-flow")


def killer_pipeline(job):
    return Pipeline([KillStage()], name="killer-flow")
