"""Tests for the repro.analysis lint engine and its rule catalogue."""

import json
import os

import pytest

from repro.analysis import (
    EXIT_CLEAN,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
    Baseline,
    LintConfig,
    LintEngine,
    default_rules,
    render_json,
    render_text,
)
from repro.cli import main

KERNEL = "src/repro/density/example.py"
PLAIN = "src/repro/flow/example.py"


def lint(source, path=PLAIN, **config_kwargs):
    engine = LintEngine(config=LintConfig(**config_kwargs))
    return engine.lint_source(source, path)


def rule_names(violations):
    return [v.rule for v in violations]


class TestAutogradContract:
    GOOD = """
class Mul(Function):
    @staticmethod
    def forward(ctx, a, b):
        return a * b

    @staticmethod
    def backward(ctx, grad):
        return grad, grad
"""

    def test_compliant_class_passes(self):
        assert lint(self.GOOD) == []

    def test_missing_backward(self):
        src = """
class Broken(Function):
    @staticmethod
    def forward(ctx, a):
        return a
"""
        out = lint(src)
        assert rule_names(out) == ["autograd-contract"]
        assert "lacks a backward()" in out[0].message

    def test_not_staticmethod(self):
        src = """
class Broken(Function):
    def forward(ctx, a):
        return a

    @staticmethod
    def backward(ctx, grad):
        return (grad,)
"""
        out = lint(src)
        assert any("must be a @staticmethod" in v.message for v in out)

    def test_ctx_not_first(self):
        src = """
class Broken(Function):
    @staticmethod
    def forward(a, b):
        return a

    @staticmethod
    def backward(ctx, grad):
        return grad, grad
"""
        out = lint(src)
        assert any("ctx as its first argument" in v.message for v in out)

    def test_arity_mismatch(self):
        src = """
class Broken(Function):
    @staticmethod
    def forward(ctx, a, b):
        return a * b

    @staticmethod
    def backward(ctx, grad):
        return (grad,)
"""
        out = lint(src)
        assert any("1 gradient(s) but forward takes 2" in v.message for v in out)

    def test_variadic_forward_skips_arity(self):
        src = """
class Concat(Function):
    @staticmethod
    def forward(ctx, *arrays):
        return arrays[0]

    @staticmethod
    def backward(ctx, grad):
        return (grad,)
"""
        assert lint(src) == []

    def test_unrelated_class_ignored(self):
        assert lint("class Foo:\n    pass\n") == []


class TestHotLoopScalarIteration:
    def test_zip_loop_flagged_in_kernel(self):
        src = "for a, b in zip(xs, ys):\n    total += a * b\n"
        out = lint(src, path=KERNEL)
        assert rule_names(out) == ["hot-loop-scalar-iteration"]
        assert "zip" in out[0].message

    def test_kernel_rule_silent_outside_kernels(self):
        src = "for a, b in zip(xs, ys):\n    total += a * b\n"
        assert lint(src, path=PLAIN) == []

    def test_range_len_flagged(self):
        src = "for i in range(len(xs)):\n    xs[i] += 1\n"
        out = lint(src, path=KERNEL)
        assert rule_names(out) == ["hot-loop-scalar-iteration"]

    def test_flatnonzero_flagged(self):
        src = "for i in np.flatnonzero(mask):\n    out[i] = f(i)\n"
        out = lint(src, path=KERNEL)
        assert "np.flatnonzero" in out[0].message

    def test_plain_range_and_enumerate_allowed(self):
        src = (
            "for dx in range(k):\n    pass\n"
            "for i, g in enumerate(groups):\n    pass\n"
        )
        assert lint(src, path=KERNEL) == []

    def test_tape_walker_exemption(self):
        src = "for inp, ig in zip(node.inputs, grads):\n    accumulate(inp, ig)\n"
        assert lint(src, path="src/repro/autograd/tensor.py") == []
        assert lint(src, path="src/repro/autograd/ops.py") != []


class TestDtypeDrift:
    def test_allocator_without_dtype(self):
        out = lint("d = np.zeros(grid.shape)\n", path=KERNEL)
        assert rule_names(out) == ["dtype-drift"]
        assert "without an explicit dtype=" in out[0].message

    def test_allocator_with_dtype_passes(self):
        assert lint("d = np.zeros(3, dtype=FLOAT)\n", path=KERNEL) == []

    def test_float64_literal(self):
        out = lint("x = a.astype(np.float64)\n", path=KERNEL)
        assert "stray float64" in out[0].message

    def test_float32_literal(self):
        out = lint("x = a.astype(np.float32)\n", path=KERNEL)
        assert "reduced-precision" in out[0].message

    def test_string_dtype_in_allocator_kwarg(self):
        out = lint('x = np.zeros(3, dtype="float64")\n', path=KERNEL)
        assert rule_names(out) == ["dtype-drift"]
        assert "string dtype literal" in out[0].message

    def test_silent_outside_kernels(self):
        assert lint("d = np.zeros(3)\n", path=PLAIN) == []


class TestSilentExcept:
    def test_pass_body_flagged(self):
        src = "try:\n    risky()\nexcept ValueError:\n    pass\n"
        out = lint(src)
        assert rule_names(out) == ["silent-except"]
        assert "ValueError" in out[0].message

    def test_continue_body_flagged(self):
        src = (
            "for x in items:\n"
            "    try:\n        risky(x)\n"
            "    except Exception:\n        continue\n"
        )
        assert rule_names(lint(src)) == ["silent-except"]

    def test_handled_exception_passes(self):
        src = "try:\n    risky()\nexcept ValueError as e:\n    log(e)\n"
        assert lint(src) == []


class TestMutableDefaultArg:
    def test_list_default_flagged(self):
        out = lint("def f(items=[]):\n    return items\n")
        assert rule_names(out) == ["mutable-default-arg"]

    def test_dict_call_default_flagged(self):
        out = lint("def f(opts=dict()):\n    return opts\n")
        assert rule_names(out) == ["mutable-default-arg"]

    def test_none_default_passes(self):
        assert lint("def f(items=None):\n    return items or []\n") == []


class TestMpUnsafeCapture:
    def test_lambda_target_flagged(self):
        out = lint("p = Process(target=lambda: work())\n")
        assert rule_names(out) == ["mp-unsafe-capture"]

    def test_nested_function_to_submit_flagged(self):
        src = (
            "def run(pool):\n"
            "    def task():\n        return 1\n"
            "    pool.submit(task)\n"
        )
        out = lint(src)
        assert any("captures enclosing scope" in v.message for v in out)

    def test_module_level_function_passes(self):
        src = (
            "def task():\n    return 1\n"
            "def run(pool):\n    pool.submit(task)\n"
        )
        assert lint(src) == []


class TestSuppressions:
    SRC = "for a, b in zip(xs, ys):  # repro: noqa[hot-loop-scalar-iteration]\n    pass\n"

    def test_rule_scoped_noqa(self):
        assert lint(self.SRC, path=KERNEL) == []

    def test_bare_noqa_suppresses_everything(self):
        src = "d = np.zeros(grid.shape)  # repro: noqa\n"
        assert lint(src, path=KERNEL) == []

    def test_wrong_rule_noqa_does_not_suppress(self):
        src = "d = np.zeros(grid.shape)  # repro: noqa[silent-except]\n"
        assert rule_names(lint(src, path=KERNEL)) == ["dtype-drift"]


class TestEngineAndConfig:
    def test_select_restricts_rules(self):
        src = "d = np.zeros(3)\nfor a, b in zip(xs, ys):\n    pass\n"
        out = lint(src, path=KERNEL, select=frozenset({"dtype-drift"}))
        assert rule_names(out) == ["dtype-drift"]

    def test_ignore_subtracts(self):
        src = "d = np.zeros(3)\n"
        assert lint(src, path=KERNEL, ignore=frozenset({"dtype-drift"})) == []

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            LintEngine(config=LintConfig(select=frozenset({"no-such-rule"})))

    def test_parse_error_reported_not_raised(self):
        out = lint("def broken(:\n")
        assert rule_names(out) == ["parse-error"]

    def test_lint_paths_sorted_and_recursive(self, tmp_path):
        pkg = tmp_path / "density"
        pkg.mkdir()
        (pkg / "b.py").write_text("x = np.zeros(3)\n")
        (pkg / "a.py").write_text("y = np.ones(4)\n")
        out = LintEngine().lint_paths([str(tmp_path)])
        assert [os.path.basename(v.path) for v in out] == ["a.py", "b.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            LintEngine().lint_paths(["/no/such/dir-xyz"])


class TestReporters:
    def test_text_clean(self):
        assert render_text([]) == "clean: no violations"

    def test_text_summary_counts(self):
        out = lint("d = np.zeros(3)\ne = np.ones(4)\n", path=KERNEL)
        text = render_text(out)
        assert "2 violation(s)" in text and "dtype-drift: 2" in text

    def test_json_roundtrip(self):
        out = lint("d = np.zeros(3)\n", path=KERNEL)
        payload = json.loads(render_json(out))
        assert payload["count"] == 1
        assert payload["violations"][0]["rule"] == "dtype-drift"


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target)]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        pkg = tmp_path / "density"
        pkg.mkdir()
        target = pkg / "bad.py"
        target.write_text("d = np.zeros(3)\n")
        assert main(["lint", str(target)]) == EXIT_VIOLATIONS
        assert "dtype-drift" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target), "--format", "json"]) == EXIT_CLEAN
        assert json.loads(capsys.readouterr().out)["count"] == 0

    def test_unknown_rule_exits_usage(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        code = main(["lint", str(target), "--select", "bogus"])
        assert code == EXIT_USAGE
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in default_rules():
            assert rule.name in out


class TestShippedTree:
    def test_source_tree_lints_clean(self):
        """The shipped tree passes modulo the committed, justified
        baseline — and the baseline carries no stale entries."""
        root = os.path.join(os.path.dirname(__file__), "..")
        src = os.path.join(root, "src", "repro")
        baseline = Baseline.load(os.path.join(root, "LINT_BASELINE.json"))
        violations = LintEngine().lint_paths([src])
        new, _suppressed, stale = baseline.partition(violations)
        assert new == [], render_text(new)
        assert stale == []

    def test_no_inline_suppressions_in_tree(self):
        src = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
        offenders = []
        for root, _dirs, files in os.walk(src):
            # The analysis package documents the marker syntax itself.
            if os.path.basename(root) == "analysis":
                continue
            for name in files:
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                with open(path, encoding="utf-8") as fh:
                    if "repro: noqa" in fh.read():
                        offenders.append(path)
        assert offenders == []
