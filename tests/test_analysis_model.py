"""Tests for the shared semantic model (repro.analysis.model).

Covers the CFG builder on the control-flow shapes the dataflow rules
lean on (try/finally, with, early return, raise paths), call-graph
resolution, lock-attribute detection, and guard inference on a
miniature scheduler-shaped fixture.
"""

import ast
import textwrap

from repro.analysis.locks import _ClassAnalysis
from repro.analysis.model import build_model


def model_of(source):
    source = textwrap.dedent(source)
    return build_model(ast.parse(source), "mod.py", source)


def cfg_of(source, qualname):
    model = model_of(source)
    return model, model.functions[qualname].cfg


class TestCFG:
    def test_straight_line_reaches_exit(self):
        _, cfg = cfg_of(
            """
            def f():
                a = 1
                return a
            """,
            "f",
        )
        # Nothing here can raise, so only the normal exit is reachable.
        assert cfg.reachable_exit([cfg.entry]) == "exit"
        assert cfg.reachable_exit([cfg.entry], blocked=[cfg.exit]) is None

    def test_early_return_bypasses_later_statements(self):
        model, cfg = cfg_of(
            """
            def f(flag):
                h = acquire()
                if flag:
                    return 1
                h.close()
                return 2
            """,
            "f",
        )
        func = model.functions["f"].node
        acquire_node = cfg.node_of(func.body[0])
        close_node = cfg.node_of(func.body[2])
        # Blocking the close statement still reaches exit via `return 1`.
        assert (
            cfg.reachable_exit(acquire_node.succs, blocked=[close_node.id])
            == "exit"
        )

    def test_try_finally_blocks_every_path(self):
        model, cfg = cfg_of(
            """
            def f():
                h = acquire()
                try:
                    use(h)
                finally:
                    h.close()
            """,
            "f",
        )
        func = model.functions["f"].node
        acquire_node = cfg.node_of(func.body[0])
        close_node = cfg.node_of(func.body[1].finalbody[0])
        # Normal completion AND the use(h) exception both route through
        # the finally body: blocking close blocks every exit.
        assert (
            cfg.reachable_exit(acquire_node.succs, blocked=[close_node.id])
            is None
        )
        assert cfg.reachable_exit(acquire_node.succs) in ("exit", "raise-exit")

    def test_exception_mid_body_escapes_without_cleanup(self):
        model, cfg = cfg_of(
            """
            def f():
                h = acquire()
                use(h)
                h.close()
            """,
            "f",
        )
        func = model.functions["f"].node
        acquire_node = cfg.node_of(func.body[0])
        close_node = cfg.node_of(func.body[2])
        # use(h) may raise; that path reaches raise-exit without close.
        assert (
            cfg.reachable_exit(acquire_node.succs, blocked=[close_node.id])
            == "raise-exit"
        )

    def test_return_routes_through_finally(self):
        model, cfg = cfg_of(
            """
            def f():
                try:
                    return compute()
                finally:
                    cleanup()
            """,
            "f",
        )
        func = model.functions["f"].node
        return_node = cfg.node_of(func.body[0].body[0])
        cleanup_node = cfg.node_of(func.body[0].finalbody[0])
        assert (
            cfg.reachable_exit(return_node.succs, blocked=[cleanup_node.id])
            is None
        )

    def test_except_handler_is_a_path(self):
        model, cfg = cfg_of(
            """
            def f():
                h = acquire()
                try:
                    use(h)
                except ValueError:
                    recover()
                h.close()
            """,
            "f",
        )
        func = model.functions["f"].node
        acquire_node = cfg.node_of(func.body[0])
        close_node = cfg.node_of(func.body[2])
        # The handled path falls through to close; the unmatched
        # exception still escapes without it.
        assert (
            cfg.reachable_exit(acquire_node.succs, blocked=[close_node.id])
            == "raise-exit"
        )

    def test_with_body_reached_through_header(self):
        model, cfg = cfg_of(
            """
            def f(lock):
                with lock:
                    work()
            """,
            "f",
        )
        func = model.functions["f"].node
        with_node = cfg.node_of(func.body[0])
        body_node = cfg.node_of(func.body[0].body[0])
        assert body_node.id in with_node.succs

    def test_while_loop_breaks_exit(self):
        _, cfg = cfg_of(
            """
            def f():
                while True:
                    if done():
                        break
                return 1
            """,
            "f",
        )
        assert cfg.reachable_exit([cfg.entry]) == "exit"


class TestSymbolsAndCalls:
    SRC = """
        import threading
        from threading import Lock

        def helper(x):
            return x + 1

        class Svc:
            def __init__(self):
                self._lock = threading.Lock()
                self._aux = Lock()

            def run(self):
                self._step()
                helper(1)
                Svc._step(self)

            def _step(self):
                pass
        """

    def test_lock_attr_detection_both_import_styles(self):
        model = model_of(self.SRC)
        assert model.classes["Svc"].lock_attrs == {
            "_lock": "Lock",
            "_aux": "Lock",
        }

    def test_self_method_resolution(self):
        model = model_of(self.SRC)
        assert "Svc._step" in model.call_graph["Svc.run"]

    def test_bare_name_and_classname_resolution(self):
        model = model_of(self.SRC)
        assert "helper" in model.call_graph["Svc.run"]
        callers = {caller for caller, _ in model.call_sites["Svc._step"]}
        assert callers == {"Svc.run"}

    def test_unresolvable_call_is_skipped(self):
        model = model_of(
            """
            import os

            def f():
                os.getcwd()
            """
        )
        assert model.call_graph["f"] == set()


class TestGuardInference:
    MINI_SCHEDULER = """
        import threading

        class MiniScheduler:
            def __init__(self):
                self._lock = threading.Lock()
                self._queue = []
                self._done = {}
                self._name = "mini"

            def submit(self, job):
                with self._lock:
                    self._queue.append(job)
                    self._resolve(job)

            def _resolve(self, job):
                self._done[job] = True

            def depth(self):
                with self._lock:
                    return len(self._queue)

            def label(self):
                return self._name
        """

    def analysis(self, source=MINI_SCHEDULER):
        model = model_of(source)
        return _ClassAnalysis(model, model.classes["MiniScheduler"])

    def test_golden_guard_sets(self):
        analysis = self.analysis()
        assert analysis.guards == {
            "_queue": frozenset({"_lock"}),
            "_done": frozenset({"_lock"}),
        }

    def test_helper_inherits_held_at_entry(self):
        # _resolve is only ever called under the lock, so its write to
        # _done counts as guarded and needs no redundant with-block.
        analysis = self.analysis()
        assert analysis.entry_held["_resolve"] == frozenset({"_lock"})
        assert list(analysis.violations()) == []

    def test_public_entry_point_holds_nothing(self):
        analysis = self.analysis()
        assert analysis.entry_held["submit"] == frozenset()
        assert analysis.entry_held["depth"] == frozenset()

    def test_unguarded_read_is_a_violation(self):
        analysis = self.analysis(
            """
            import threading

            class MiniScheduler:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = []

                def submit(self, job):
                    with self._lock:
                        self._queue.append(job)

                def peek(self):
                    return self._queue[0]
            """
        )
        bad = list(analysis.violations())
        assert len(bad) == 1
        access, guard = bad[0]
        assert access.attr == "_queue" and not access.write
        assert guard == frozenset({"_lock"})
