"""Seeded-defect corpus for the dataflow lint passes, plus the baseline
and git-diff plumbing around them.

Each analyzer family gets a miniature module carrying exactly the bug
class it exists to catch (an unguarded attribute write, ``time.time()``
in a content-hash flow, a SharedMemory segment leaked on an exception
path, an ABBA lock cycle) and a fixed twin proving the sanctioned
pattern passes clean.
"""

import json
import os
import subprocess
import textwrap

import pytest

from repro.analysis import (
    EXIT_CLEAN,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
    Baseline,
    BaselineEntry,
    LintConfig,
    LintEngine,
)
from repro.analysis.engine import Violation
from repro.cli import main


def lint(source, select, path="svc/module.py"):
    engine = LintEngine(config=LintConfig(select=frozenset(select)))
    return engine.lint_source(textwrap.dedent(source), path)


def rule_names(violations):
    return [v.rule for v in violations]


class TestLockDiscipline:
    def test_unguarded_write_flagged(self):
        out = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def drop(self, key):
                    del self._items[key]
            """,
            select={"lock-discipline"},
        )
        assert rule_names(out) == ["lock-discipline"]
        assert "_items" in out[0].message and "drop" in out[0].message

    def test_unguarded_read_flagged(self):
        out = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def size(self):
                    return len(self._items)
            """,
            select={"lock-discipline"},
        )
        assert rule_names(out) == ["lock-discipline"]
        assert "read" in out[0].message

    def test_helper_called_under_lock_is_clean(self):
        out = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._insert(key, value)

                def _insert(self, key, value):
                    self._items[key] = value
            """,
            select={"lock-discipline"},
        )
        assert out == []

    def test_mutator_call_counts_as_write(self):
        out = lint(
            """
            import threading

            class Log:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = []

                def emit(self, event):
                    with self._lock:
                        self._events.append(event)

                def drain(self):
                    self._events.clear()
            """,
            select={"lock-discipline"},
        )
        assert rule_names(out) == ["lock-discipline"]

    def test_lockless_class_out_of_scope(self):
        out = lint(
            """
            class Plain:
                def __init__(self):
                    self._items = {}

                def put(self, key, value):
                    self._items[key] = value
            """,
            select={"lock-discipline"},
        )
        assert out == []


class TestLockOrder:
    ABBA = """
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def one(self):
                with self._a:
                    with self._b:
                        pass

            def two(self):
                with self._b:
                    with self._a:
                        pass
        """

    def test_abba_cycle_flagged(self):
        out = lint(self.ABBA, select={"lock-order"})
        assert rule_names(out) == ["lock-order"]
        assert "ABBA" in out[0].message
        assert out[0].severity == "warning"

    def test_consistent_order_is_clean(self):
        out = lint(
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """,
            select={"lock-order"},
        )
        assert out == []

    def test_cycle_through_dispatch_flagged(self):
        out = lint(
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        self._inner()

                def _inner(self):
                    with self._b:
                        pass

                def two(self):
                    with self._b:
                        with self._a:
                            pass
            """,
            select={"lock-order"},
        )
        assert rule_names(out) == ["lock-order"]


class TestDeterminism:
    def test_wall_clock_in_hash_flow_flagged(self):
        out = lint(
            """
            import hashlib
            import time

            def content_hash(spec):
                digest = hashlib.sha256()
                digest.update(str(time.time()).encode())
                return digest.hexdigest()
            """,
            select={"determinism"},
        )
        assert rule_names(out) == ["determinism"]
        assert "time.time()" in out[0].message

    def test_tainted_name_reaching_sink_flagged(self):
        out = lint(
            """
            import hashlib
            import time

            def stamp_key(spec):
                stamp = time.time()
                return hashlib.sha256(str(stamp).encode()).hexdigest()
            """,
            select={"determinism"},
        )
        assert any("stamp" in v.message for v in out)

    def test_unordered_iteration_feeding_hash_flagged(self):
        out = lint(
            """
            import hashlib

            def digest(items):
                h = hashlib.sha256()
                for item in set(items):
                    h.update(item)
                return h.hexdigest()
            """,
            select={"determinism"},
        )
        assert any("sorted()" in v.message for v in out)

    def test_sorted_launders_order_taint(self):
        out = lint(
            """
            import hashlib

            def digest(items):
                h = hashlib.sha256()
                for item in sorted(set(items)):
                    h.update(item)
                return h.hexdigest()
            """,
            select={"determinism"},
        )
        assert out == []

    def test_seeded_streams_allowed(self):
        out = lint(
            """
            import random

            import numpy as np

            def draw(seed):
                rng = np.random.default_rng([seed, 7])
                shuffler = random.Random(seed)
                return ForkSpec(rng.integers(10), shuffler.random())
            """,
            select={"determinism"},
        )
        assert out == []

    def test_unseeded_rng_into_forkspec_flagged(self):
        out = lint(
            """
            import numpy as np

            def draw():
                rng = np.random.default_rng()
                return ForkSpec(rng.integers(10))
            """,
            select={"determinism"},
        )
        assert rule_names(out) == ["determinism"]

    def test_no_sink_means_out_of_scope(self):
        out = lint(
            """
            import time

            def elapsed(started):
                return time.time() - started
            """,
            select={"determinism"},
        )
        assert out == []


class TestResourceLifetime:
    def test_shared_memory_leak_on_exception_path(self):
        # The view copy between create and return may raise; on that
        # path the named segment escapes unreleased.
        out = lint(
            """
            from multiprocessing import shared_memory

            import numpy as np

            def publish(arr):
                shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                return shm
            """,
            select={"resource-lifetime"},
        )
        assert rule_names(out) == ["resource-lifetime"]
        assert "shm" in out[0].message
        assert "exception" in out[0].message

    def test_immediate_transfer_is_clean(self):
        # The publish_design pattern: register the segment with its
        # owning container before any statement that can raise.
        out = lint(
            """
            from multiprocessing import shared_memory

            import numpy as np

            def publish(arr, registry):
                shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
                registry.append(shm)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                return shm
            """,
            select={"resource-lifetime"},
        )
        assert out == []

    def test_try_finally_release_is_clean(self):
        out = lint(
            """
            def read_header(path):
                fh = open(path, "rb")
                try:
                    return fh.read(16)
                finally:
                    fh.close()
            """,
            select={"resource-lifetime"},
        )
        assert out == []

    def test_with_block_is_clean(self):
        out = lint(
            """
            def read_all(path):
                handle = open(path)
                with handle:
                    return handle.read()
            """,
            select={"resource-lifetime"},
        )
        assert out == []

    def test_anonymous_handle_flagged(self):
        out = lint(
            """
            import json

            def load(path):
                return json.load(open(path))
            """,
            select={"resource-lifetime"},
        )
        assert rule_names(out) == ["resource-lifetime"]

    def test_socket_leak_flagged(self):
        out = lint(
            """
            import socket

            def probe(host):
                sock = socket.create_connection((host, 80))
                sock.sendall(b"ping")
                sock.close()
            """,
            select={"resource-lifetime"},
        )
        # sendall may raise before close: the exception path leaks.
        assert rule_names(out) == ["resource-lifetime"]


class TestNoqaSpans:
    def test_noqa_on_later_line_of_multiline_statement(self):
        engine = LintEngine()
        out = engine.lint_source(
            "d = np.zeros(\n"
            "    3,\n"
            ")  # repro: noqa[dtype-drift]\n",
            "src/repro/density/example.py",
        )
        assert out == []

    def test_noqa_on_decorator_covers_the_def_header(self):
        engine = LintEngine()
        out = engine.lint_source(
            "@decorated  # repro: noqa[mutable-default-arg]\n"
            "def f(x=[]):\n"
            "    return x\n",
            "src/repro/flow/example.py",
        )
        assert out == []

    def test_noqa_on_def_does_not_blanket_the_body(self):
        engine = LintEngine()
        out = engine.lint_source(
            "def f(x=[]):  # repro: noqa[mutable-default-arg]\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:\n"
            "        pass\n",
            "src/repro/flow/example.py",
        )
        assert rule_names(out) == ["silent-except"]


class TestBaseline:
    def violation(self, code="x = time.time()"):
        return Violation(
            path="/abs/src/repro/service/daemon.py",
            line=12,
            col=5,
            rule="determinism",
            message="time.time() in a journal flow",
            code=code,
        )

    def entry(self, **kw):
        data = {
            "rule": "determinism",
            "path": "src/repro/service/daemon.py",
            "code": "x = time.time()",
            "justification": "journal ts is operational metadata",
        }
        data.update(kw)
        return BaselineEntry(**data)

    def test_partition_suppresses_matches(self):
        baseline = Baseline(entries=[self.entry()])
        new, suppressed, stale = baseline.partition([self.violation()])
        assert new == [] and len(suppressed) == 1 and stale == []

    def test_partition_reports_stale_entries(self):
        baseline = Baseline(entries=[self.entry(code="y = other()")])
        new, suppressed, stale = baseline.partition([self.violation()])
        assert len(new) == 1 and suppressed == [] and len(stale) == 1

    def test_line_drift_does_not_unbaseline(self):
        baseline = Baseline(entries=[self.entry()])
        moved = Violation(
            path="/abs/src/repro/service/daemon.py",
            line=99,
            col=1,
            rule="determinism",
            message="time.time() in a journal flow",
            code="x = time.time()",
        )
        new, suppressed, _ = baseline.partition([moved])
        assert new == [] and len(suppressed) == 1

    def test_load_requires_justification(self, tmp_path):
        path = tmp_path / "LINT_BASELINE.json"
        path.write_text(json.dumps({
            "entries": [{
                "rule": "determinism",
                "path": "a.py",
                "code": "x = 1",
                "justification": "",
            }]
        }))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(str(path))

    def test_cli_rejects_bad_baseline(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        code = main(["lint", str(target), "--baseline", str(bad)])
        assert code == EXIT_USAGE
        assert "baseline" in capsys.readouterr().err

    def test_cli_baselined_finding_exits_clean(self, tmp_path, capsys):
        pkg = tmp_path / "density"
        pkg.mkdir()
        target = pkg / "bad.py"
        target.write_text("d = np.zeros(3)\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "entries": [{
                "rule": "dtype-drift",
                "path": "density/bad.py",
                "code": "d = np.zeros(3)",
                "justification": "fixture for the baseline test",
            }]
        }))
        code = main(["lint", str(target), "--baseline", str(baseline)])
        assert code == EXIT_CLEAN
        assert "baselined" in capsys.readouterr().out


def _git(repo, *argv):
    subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t",
         *argv],
        cwd=repo, check=True, capture_output=True,
    )


class TestChangedScope:
    @pytest.fixture()
    def repo(self, tmp_path, monkeypatch):
        _git(tmp_path, "init", "-q")
        pkg = tmp_path / "density"
        pkg.mkdir()
        committed = pkg / "committed.py"
        committed.write_text("d = np.zeros(3)\n")
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-q", "-m", "seed")
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_changed_scopes_to_diff(self, repo, capsys):
        fresh = repo / "density" / "fresh.py"
        fresh.write_text("e = np.empty(4)\n")
        code = main(["lint", str(repo), "--changed", "HEAD",
                     "--no-baseline"])
        out = capsys.readouterr().out
        assert code == EXIT_VIOLATIONS
        assert "fresh.py" in out
        assert "committed.py" not in out

    def test_no_changes_is_clean(self, repo, capsys):
        code = main(["lint", str(repo), "--changed", "HEAD",
                     "--no-baseline"])
        assert code == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_bad_ref_is_usage_error(self, repo, capsys):
        code = main(["lint", str(repo), "--changed", "no-such-ref",
                     "--no-baseline"])
        assert code == EXIT_USAGE
        assert "no-such-ref" in capsys.readouterr().err
