"""Tests for the reverse-mode autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import (
    Tensor,
    gather_cells,
    gradcheck,
    hybrid_gradient,
    irfft2,
    no_grad,
    rfft2,
    segment_sum,
    spectral_low_pass,
)
from repro.autograd.ops import channel_linear, concat
from repro.ops import use_profiler


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestBasics:
    def test_scalar_chain(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = (x * x + x).sum()
        y.backward()
        assert x.grad[0] == pytest.approx(5.0)

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (x * 2).backward()

    def test_grad_accumulates(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        (x * 2).sum().backward()
        (x * 4).sum().backward()
        assert x.grad[0] == pytest.approx(6.0)

    def test_zero_grad(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = (x * 3).detach()
        z = (y * x).sum()
        z.backward()
        assert x.grad[0] == pytest.approx(6.0)  # only through the live branch

    def test_no_grad_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert y._node is None

    def test_diamond_graph(self):
        # x feeds two paths that rejoin: gradient must sum.
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2
        b = x * 5
        (a + b).sum().backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_reused_tensor_many_times(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        total = x * 0.0
        for __ in range(10):
            total = total + x
        total.sum().backward()
        assert x.grad[0] == pytest.approx(10.0)

    def test_python_scalars_promote(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = (3.0 * x + 1.0 - x / 2.0).sum()
        y.backward()
        assert x.grad[0] == pytest.approx(2.5)

    def test_rsub_rdiv(self):
        x = Tensor(np.array([4.0]), requires_grad=True)
        (1.0 - x).sum().backward()
        assert x.grad[0] == pytest.approx(-1.0)
        x.zero_grad()
        (8.0 / x).sum().backward()
        assert x.grad[0] == pytest.approx(-0.5)


class TestGradcheckOps:
    def test_elementwise_chain(self, rng):
        a = Tensor(rng.normal(size=7), requires_grad=True)
        b = Tensor(rng.normal(size=7), requires_grad=True)
        gradcheck(lambda a, b: (a * b + a.exp() - b.tanh()).sum(), [a, b])

    def test_log_sqrt_sigmoid(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=6), requires_grad=True)
        gradcheck(lambda a: (a.log() + a.sqrt() + a.sigmoid()).sum(), [a])

    def test_relu_abs(self, rng):
        a = Tensor(rng.normal(size=9) + 0.1, requires_grad=True)
        gradcheck(lambda a: (a.relu() + a.abs()).sum(), [a])

    def test_gelu(self, rng):
        a = Tensor(rng.normal(size=11), requires_grad=True)
        gradcheck(lambda a: a.gelu().sum(), [a])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2, size=5), requires_grad=True)
        gradcheck(lambda a: (a**3).sum(), [a])

    def test_broadcasting(self, rng):
        a = Tensor(rng.normal(size=(3, 1)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        gradcheck(lambda a, b: (a * b + a - b).sum(), [a, b])

    def test_sum_with_axis(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradcheck(lambda a: (a.sum(axis=0) ** 2).sum(), [a])

    def test_mean(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradcheck(lambda a: (a.mean(axis=1) ** 2).sum(), [a])

    def test_matmul(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_reshape_transpose(self, rng):
        a = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        gradcheck(lambda a: (a.reshape(3, 4).transpose() ** 2).sum(), [a])

    def test_getitem_gather(self, rng):
        a = Tensor(rng.normal(size=8), requires_grad=True)
        idx = np.array([0, 3, 3, 7])
        gradcheck(lambda a: (a[idx] ** 2).sum(), [a])

    def test_concat(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        gradcheck(lambda a, b: (concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_channel_linear(self, rng):
        x = Tensor(rng.normal(size=(3, 4, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2,)), requires_grad=True)
        gradcheck(lambda x, w, b: channel_linear(x, w, b).sum(), [x, w, b])

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_random_composite_property(self, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.uniform(0.2, 1.5, size=5), requires_grad=True)
        gradcheck(
            lambda a: ((a * a).exp().log() + a.sqrt() * a.tanh()).sum(),
            [a],
            rng=rng,
        )


class TestSegmentOps:
    def test_gather_cells_with_offset(self, rng):
        cells = Tensor(rng.normal(size=5), requires_grad=True)
        pin2cell = np.array([0, 0, 2, 4])
        offset = np.array([0.1, -0.1, 0.0, 0.5])
        out = gather_cells(cells, pin2cell, offset)
        expected = cells.data[pin2cell] + offset
        np.testing.assert_allclose(out.data, expected)
        gradcheck(lambda c: (gather_cells(c, pin2cell, offset) ** 2).sum(), [cells])

    def test_segment_sum_values(self):
        pins = Tensor(np.array([1.0, 2.0, 3.0, 4.0]), requires_grad=True)
        net_start = np.array([0, 2, 4])
        out = segment_sum(pins, net_start)
        assert out.data.tolist() == [3.0, 7.0]

    def test_segment_sum_gradient(self, rng):
        pins = Tensor(rng.normal(size=6), requires_grad=True)
        net_start = np.array([0, 2, 2, 6])  # includes an empty net
        gradcheck(lambda p: (segment_sum(p, net_start) ** 2).sum(), [pins])


class TestSpectral:
    def test_rfft2_roundtrip(self, rng):
        x = Tensor(rng.normal(size=(2, 8, 8)))
        back = irfft2(rfft2(x), 8, 8)
        np.testing.assert_allclose(back.data, x.data, atol=1e-12)

    def test_rfft2_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(8, 8)), requires_grad=True)
        gradcheck(
            lambda x: (rfft2(x).abs() ** 2).sum(), [x], rtol=1e-3, atol=1e-5
        )

    def test_irfft2_gradcheck(self, rng):
        spec = Tensor(
            rng.normal(size=(8, 5)) + 1j * rng.normal(size=(8, 5)),
            requires_grad=True,
        )
        gradcheck(
            lambda s: (irfft2(s, 8, 8) ** 2).sum(), [spec], rtol=1e-3, atol=1e-5
        )

    def test_low_pass_keeps_corner_blocks(self, rng):
        spec = Tensor(rng.normal(size=(8, 5)) + 1j * rng.normal(size=(8, 5)))
        out = spectral_low_pass(spec, 2).data
        assert np.all(out[:2, :2] != 0)
        assert np.all(out[-2:, :2] != 0)
        assert np.all(out[3:5, :] == 0)
        assert np.all(out[:, 2:] == 0)

    def test_full_spectral_pipeline_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 8, 8)), requires_grad=True)
        w = Tensor(
            rng.normal(size=(2, 8, 5)) + 1j * rng.normal(size=(2, 8, 5)),
            requires_grad=True,
        )

        def pipeline(x, w):
            spec = spectral_low_pass(rfft2(x) * w, 3)
            return (irfft2(spec, 8, 8) ** 2).sum()

        gradcheck(pipeline, [x, w], rtol=1e-3, atol=1e-5)

    def test_odd_width_mirror_weights(self, rng):
        x = Tensor(rng.normal(size=(7, 7)), requires_grad=True)
        gradcheck(
            lambda x: (rfft2(x).abs() ** 2).sum(), [x], rtol=1e-3, atol=1e-5
        )


class TestHybridGradient:
    def test_none_loss_passthrough(self):
        gx = np.ones(3)
        gy = np.zeros(3)
        out_x, out_y = hybrid_gradient(np.zeros(3), np.zeros(3), gx, gy)
        assert out_x is gx and out_y is gy

    def test_user_loss_accumulates(self):
        x = np.array([1.0, 2.0])
        y = np.array([3.0, 4.0])
        gx = np.array([0.5, 0.5])
        gy = np.array([0.0, 0.0])
        out_x, out_y = hybrid_gradient(
            x, y, gx, gy, user_loss=lambda tx, ty: (tx * tx + 2 * ty).sum()
        )
        np.testing.assert_allclose(out_x, gx + 2 * x)
        np.testing.assert_allclose(out_y, gy + 2.0)

    def test_non_scalar_loss_rejected(self):
        with pytest.raises(ValueError):
            hybrid_gradient(
                np.zeros(2),
                np.zeros(2),
                np.zeros(2),
                np.zeros(2),
                user_loss=lambda tx, ty: tx * 2,
            )


class TestProfilerIntegration:
    def test_backward_roughly_doubles_launches(self, rng):
        """The Section 3.1.3 premise: autograd ≈ 2x the operator count."""
        x = Tensor(rng.normal(size=32), requires_grad=True)

        def build():
            return ((x * 2.0).exp() + x.tanh() * x).sum()

        with use_profiler() as fwd_only:
            with no_grad():
                build()
        with use_profiler() as full:
            loss = build()
            loss.backward()
        fwd = sum(v for k, v in fwd_only.counts.items() if k.startswith("fwd."))
        bwd = sum(v for k, v in full.counts.items() if k.startswith("bwd."))
        assert bwd >= 0.8 * fwd
        assert full.total > 1.7 * fwd_only.total
