"""Tests for the synthetic benchmark generator and named suites."""

import numpy as np
import pytest

from repro.benchgen import (
    CircuitSpec,
    ISPD2005_LIKE,
    ISPD2015_LIKE,
    generate_circuit,
    ispd2005_like_suite,
    ispd2015_like_suite,
    make_design,
)
from repro.netlist import compute_stats


class TestSpec:
    def test_seed_depends_on_name(self):
        a = CircuitSpec("a", num_cells=100)
        b = CircuitSpec("b", num_cells=100)
        assert a.rng_seed() != b.rng_seed()

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            CircuitSpec("x", num_cells=5)
        with pytest.raises(ValueError):
            CircuitSpec("x", num_cells=100, utilization=1.5)
        with pytest.raises(ValueError):
            CircuitSpec("x", num_cells=100, macro_fraction=0.95)
        with pytest.raises(ValueError):
            CircuitSpec("x", num_cells=100, locality=1.5)


class TestGenerator:
    @pytest.fixture(scope="class")
    def circuit(self):
        return generate_circuit(
            CircuitSpec("gen", num_cells=500, num_macros=4, num_pads=16)
        )

    def test_determinism(self):
        spec = CircuitSpec("det", num_cells=200)
        a = generate_circuit(spec)
        b = generate_circuit(spec)
        assert np.array_equal(a.cell_w, b.cell_w)
        assert np.array_equal(a.pin2cell, b.pin2cell)
        assert np.array_equal(a.pin_dx, b.pin_dx)

    def test_counts(self, circuit):
        assert circuit.num_movable == 500
        assert circuit.num_cells == 500 + 4 + 16

    def test_macros_inside_die_and_disjoint(self, circuit):
        fixed = (~circuit.movable) & (circuit.cell_area > 0)
        idx = np.flatnonzero(fixed)
        region = circuit.region
        xl = circuit.fixed_x[idx] - circuit.cell_w[idx] / 2
        xh = circuit.fixed_x[idx] + circuit.cell_w[idx] / 2
        yl = circuit.fixed_y[idx] - circuit.cell_h[idx] / 2
        yh = circuit.fixed_y[idx] + circuit.cell_h[idx] / 2
        assert np.all(xl >= region.xl - 1e-6) and np.all(xh <= region.xh + 1e-6)
        assert np.all(yl >= region.yl - 1e-6) and np.all(yh <= region.yh + 1e-6)
        for i in range(len(idx)):
            for j in range(i + 1, len(idx)):
                overlap_x = min(xh[i], xh[j]) - max(xl[i], xl[j])
                overlap_y = min(yh[i], yh[j]) - max(yl[i], yl[j])
                assert min(overlap_x, overlap_y) <= 1e-9

    def test_utilization_near_target(self, circuit):
        stats = compute_stats(circuit)
        assert abs(stats.utilization - 0.7) < 0.12

    def test_net_degrees_contest_like(self, circuit):
        degrees = circuit.net_degree
        assert degrees.min() >= 2
        # Two/three-pin nets dominate.
        assert np.mean(degrees <= 4) > 0.6
        assert degrees.mean() < 6

    def test_pin_offsets_inside_cells(self, circuit):
        hw = circuit.cell_w[circuit.pin2cell] / 2
        hh = circuit.cell_h[circuit.pin2cell] / 2
        assert np.all(np.abs(circuit.pin_dx) <= hw + 1e-9)
        assert np.all(np.abs(circuit.pin_dy) <= hh + 1e-9)

    def test_pads_on_periphery(self, circuit):
        pads = [
            i
            for i, name in enumerate(circuit.cell_name)
            if name.startswith("p") and not circuit.movable[i]
        ]
        region = circuit.region
        for i in pads:
            x, y = circuit.fixed_x[i], circuit.fixed_y[i]
            on_edge = (
                abs(x - region.xl) < 1e-6
                or abs(x - region.xh) < 1e-6
                or abs(y - region.yl) < 1e-6
                or abs(y - region.yh) < 1e-6
            )
            assert on_edge

    def test_no_macros_when_disabled(self):
        nl = generate_circuit(
            CircuitSpec("nomac", num_cells=100, num_macros=0, macro_fraction=0.0)
        )
        areas = nl.cell_area[~nl.movable]
        assert np.all(areas == 0)  # only zero-area pads remain fixed


class TestSuites:
    def test_suite_names_match_paper_table1(self):
        assert set(ISPD2005_LIKE) == {
            "adaptec1", "adaptec2", "adaptec3", "adaptec4",
            "bigblue1", "bigblue2", "bigblue3", "bigblue4",
        }
        assert len(ISPD2015_LIKE) == 20
        assert "superblue16_a" in ISPD2015_LIKE

    def test_size_ordering_preserved(self):
        suite = ispd2005_like_suite()
        assert suite["bigblue4"].num_cells > suite["bigblue3"].num_cells
        assert suite["bigblue3"].num_cells > suite["adaptec1"].num_cells

    def test_scale_controls_size(self):
        small = ispd2005_like_suite(scale=0.005)["bigblue4"]
        large = ispd2005_like_suite(scale=0.02)["bigblue4"]
        assert large.num_cells > small.num_cells

    def test_make_design_override(self):
        nl = make_design("fft_1", num_cells=300)
        assert nl.num_movable == 300

    def test_make_design_unknown(self):
        with pytest.raises(KeyError):
            make_design("nonexistent_design")

    def test_ispd2015_min_size_clamp(self):
        suite = ispd2015_like_suite(scale=0.001)
        assert all(spec.num_cells >= 600 for spec in suite.values())
