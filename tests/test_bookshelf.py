"""Bookshelf reader/writer tests including full round-trips."""

import os

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.bookshelf import read_aux, read_bookshelf, write_bookshelf
from repro.bookshelf.reader import BookshelfError
from repro.netlist import NetlistBuilder, PlacementRegion


@pytest.fixture(scope="module")
def small_circuit():
    return generate_circuit(CircuitSpec("bsf", num_cells=120, num_macros=2, num_pads=8))


class TestRoundTrip:
    def test_counts_preserved(self, small_circuit, tmp_path):
        aux = write_bookshelf(small_circuit, str(tmp_path))
        loaded = read_bookshelf(aux)
        assert loaded.num_cells == small_circuit.num_cells
        assert loaded.num_nets == small_circuit.num_nets
        assert loaded.num_pins == small_circuit.num_pins
        assert loaded.num_movable == small_circuit.num_movable

    def test_geometry_preserved(self, small_circuit, tmp_path):
        aux = write_bookshelf(small_circuit, str(tmp_path))
        loaded = read_bookshelf(aux)
        assert np.allclose(loaded.cell_w, small_circuit.cell_w)
        assert np.allclose(loaded.cell_h, small_circuit.cell_h)
        np.testing.assert_allclose(loaded.pin_dx, small_circuit.pin_dx, atol=1e-4)
        np.testing.assert_allclose(loaded.pin_dy, small_circuit.pin_dy, atol=1e-4)

    def test_fixed_positions_preserved(self, small_circuit, tmp_path):
        aux = write_bookshelf(small_circuit, str(tmp_path))
        loaded = read_bookshelf(aux)
        fixed = ~small_circuit.movable
        np.testing.assert_allclose(
            loaded.fixed_x[fixed], small_circuit.fixed_x[fixed], atol=1e-4
        )
        np.testing.assert_allclose(
            loaded.fixed_y[fixed], small_circuit.fixed_y[fixed], atol=1e-4
        )

    def test_positions_roundtrip_through_pl(self, small_circuit, tmp_path):
        rng = np.random.default_rng(0)
        x = rng.uniform(10, 90, small_circuit.num_cells)
        y = rng.uniform(10, 90, small_circuit.num_cells)
        aux = write_bookshelf(small_circuit, str(tmp_path), x=x, y=y)
        loaded = read_bookshelf(aux)
        movable = small_circuit.movable
        np.testing.assert_allclose(loaded.fixed_x[movable], x[movable], atol=1e-4)
        np.testing.assert_allclose(loaded.fixed_y[movable], y[movable], atol=1e-4)

    def test_region_rows_preserved(self, small_circuit, tmp_path):
        aux = write_bookshelf(small_circuit, str(tmp_path))
        loaded = read_bookshelf(aux)
        assert len(loaded.region.rows) == len(small_circuit.region.rows)
        assert loaded.region.row_height == small_circuit.region.row_height

    def test_net_weights_preserved(self, tmp_path):
        builder = NetlistBuilder("w")
        builder.set_region(PlacementRegion.with_uniform_rows(0, 0, 50, 50, 10))
        builder.add_cell("a", 2, 10)
        builder.add_cell("b", 2, 10)
        builder.add_net("heavy", [("a", 0, 0), ("b", 0, 0)], weight=3.5)
        aux = write_bookshelf(builder.build(), str(tmp_path))
        loaded = read_bookshelf(aux)
        assert loaded.net_weight[0] == pytest.approx(3.5)


class TestReaderErrors:
    def test_missing_aux_entries(self, tmp_path):
        aux = tmp_path / "bad.aux"
        aux.write_text("RowBasedPlacement : bad.nodes\n")
        with pytest.raises(BookshelfError, match="missing entries"):
            read_aux(str(aux))

    def test_degree_mismatch_detected(self, small_circuit, tmp_path):
        aux = write_bookshelf(small_circuit, str(tmp_path))
        nets_path = os.path.join(str(tmp_path), "bsf.nets")
        with open(nets_path) as handle:
            lines = handle.readlines()
        # Drop the last pin line to corrupt the final net's declared degree.
        with open(nets_path, "w") as handle:
            handle.writelines(lines[:-1])
        with pytest.raises(BookshelfError, match="declared"):
            read_bookshelf(aux)

    def test_scl_without_rows(self, small_circuit, tmp_path):
        aux = write_bookshelf(small_circuit, str(tmp_path))
        scl_path = os.path.join(str(tmp_path), "bsf.scl")
        with open(scl_path, "w") as handle:
            handle.write("UCLA scl 1.0\nNumRows : 0\n")
        with pytest.raises(BookshelfError, match="no CoreRow"):
            read_bookshelf(aux)

    def test_comments_and_blank_lines_ignored(self, small_circuit, tmp_path):
        aux = write_bookshelf(small_circuit, str(tmp_path))
        nodes_path = os.path.join(str(tmp_path), "bsf.nodes")
        with open(nodes_path) as handle:
            content = handle.read()
        with open(nodes_path, "w") as handle:
            handle.write("# a comment\n\n" + content)
        loaded = read_bookshelf(aux)
        assert loaded.num_cells == small_circuit.num_cells

    def test_missing_wts_tolerated(self, small_circuit, tmp_path):
        aux = write_bookshelf(small_circuit, str(tmp_path))
        os.remove(os.path.join(str(tmp_path), "bsf.wts"))
        loaded = read_bookshelf(aux)
        assert np.all(loaded.net_weight == 1.0)
