"""Tests for the GP-loop iteration-callback protocol.

XPlacer and the DREAMPlace-style baseline must share one callback code
path: on_start once, on_iteration per iteration, on_stop exactly once —
including when the loop converges early.
"""

import dataclasses

import pytest

from repro.baseline import DreamPlaceStyleBaseline
from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams, XPlacer
from repro.core.callbacks import (
    CallbackList,
    IterationCallback,
    LoopStart,
    LoopStop,
    RecorderCallback,
    VerboseCallback,
)
from repro.core.recorder import IterationRecord


@pytest.fixture(scope="module")
def netlist():
    return generate_circuit(CircuitSpec("cbnet", num_cells=200, num_pads=8))


# Stops early: overflow is < 2.0 from the start, so the loop exits the
# moment min_iterations allows, far below max_iterations.
EARLY_STOP = dict(min_iterations=5, max_iterations=500, stop_overflow=2.0)


class EventTrace(IterationCallback):
    """Records the exact event sequence a GP loop emits."""

    def __init__(self):
        self.events = []
        self.start_info = None
        self.stop_info = None

    def on_start(self, info):
        self.events.append("start")
        self.start_info = info

    def on_iteration(self, record):
        self.events.append(record.iteration)

    def on_stop(self, info):
        self.events.append("stop")
        self.stop_info = info


def _record(iteration=0, **overrides):
    base = IterationRecord(
        iteration=iteration,
        hpwl=100.0,
        wa=90.0,
        overflow=0.5,
        gamma=2.0,
        lam=0.1,
        omega=0.2,
        grad_ratio=0.001,
        density_computed=True,
        step_length=1.0,
    )
    return dataclasses.replace(base, **overrides) if overrides else base


class TestCallbackOrdering:
    @pytest.mark.parametrize("placer_cls", [XPlacer, DreamPlaceStyleBaseline])
    def test_on_stop_delivered_on_early_convergence(self, netlist, placer_cls):
        trace = EventTrace()
        params = PlacementParams(**EARLY_STOP)
        result = placer_cls(netlist, params).run(callbacks=[trace])

        assert result.converged
        assert result.iterations < params.max_iterations
        # Exact protocol: start, iteration 0..n-1, stop.
        assert trace.events[0] == "start"
        assert trace.events[-1] == "stop"
        assert trace.events.count("start") == 1
        assert trace.events.count("stop") == 1
        assert trace.events[1:-1] == list(range(result.iterations))

    @pytest.mark.parametrize("placer_cls,placer_name",
                             [(XPlacer, "xplace"),
                              (DreamPlaceStyleBaseline, "baseline")])
    def test_event_payloads(self, netlist, placer_cls, placer_name):
        trace = EventTrace()
        params = PlacementParams(**EARLY_STOP)
        result = placer_cls(netlist, params).run(callbacks=[trace])

        start = trace.start_info
        assert isinstance(start, LoopStart)
        assert start.design == netlist.name
        assert start.placer == placer_name
        assert start.params is params
        assert start.num_movable == netlist.num_movable

        stop = trace.stop_info
        assert isinstance(stop, LoopStop)
        assert stop.design == netlist.name
        assert stop.iterations == result.iterations
        assert stop.converged is True
        assert stop.gp_seconds > 0
        assert stop.hpwl == result.hpwl
        assert stop.overflow == result.overflow

    def test_on_stop_after_max_iterations(self, netlist):
        """on_stop also fires when the budget runs out (no convergence)."""
        trace = EventTrace()
        params = PlacementParams(min_iterations=8, max_iterations=8,
                                 stop_overflow=1e-12)
        result = XPlacer(netlist, params).run(callbacks=[trace])
        assert result.iterations == 8
        assert trace.events[-1] == "stop"
        assert trace.stop_info.converged is False

    def test_multiple_callbacks_called_in_order(self, netlist):
        calls = []

        class Tagged(IterationCallback):
            def __init__(self, tag):
                self.tag = tag

            def on_iteration(self, record):
                calls.append(self.tag)

        params = PlacementParams(**EARLY_STOP)
        XPlacer(netlist, params).run(callbacks=[Tagged("a"), Tagged("b")])
        # Insertion order within every iteration.
        assert calls[:2] == ["a", "b"]
        assert calls == ["a", "b"] * (len(calls) // 2)


class TestStockCallbacks:
    def test_external_recorder_matches_internal(self, netlist):
        """Recorder-as-callback sees exactly what the result recorder saw."""
        external = RecorderCallback()
        params = PlacementParams(**EARLY_STOP)
        result = XPlacer(netlist, params).run(callbacks=[external])
        assert len(external.recorder) == len(result.recorder)
        assert external.recorder.records == result.recorder.records

    def test_baseline_shares_recorder_path(self, netlist):
        external = RecorderCallback()
        params = PlacementParams(**EARLY_STOP)
        result = DreamPlaceStyleBaseline(netlist, params).run(
            callbacks=[external]
        )
        assert external.recorder.records == result.recorder.records

    def test_verbose_callback_line_format(self, capsys):
        cb = VerboseCallback("mydesign", every=2, extended=True)
        cb.on_iteration(_record(iteration=0))
        cb.on_iteration(_record(iteration=1))  # skipped: not on cadence
        cb.on_iteration(_record(iteration=2))
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[mydesign] iter    0 hpwl 100")
        assert "gamma" in lines[0] and "omega" in lines[0]

    def test_verbose_callback_short_style(self, capsys):
        cb = VerboseCallback("baseline d", every=1, extended=False)
        cb.on_iteration(_record(iteration=0))
        out = capsys.readouterr().out
        assert out.startswith("[baseline d] iter    0")
        assert "gamma" not in out

    def test_verbose_param_prints_through_callback(self, netlist, capsys):
        params = PlacementParams(verbose=True, **EARLY_STOP)
        XPlacer(netlist, params).run()
        out = capsys.readouterr().out
        assert f"[{netlist.name}] iter    0" in out

    def test_callback_list_fanout(self):
        a, b = EventTrace(), EventTrace()
        fan = CallbackList([a]).add(b)
        fan.on_start(LoopStart("d", "xplace", PlacementParams(), 1, 0))
        fan.on_iteration(_record())
        fan.on_stop(LoopStop("d", 1, True, 0.1, 1.0, 0.0))
        assert a.events == b.events == ["start", 0, "stop"]
