"""Service fault plans and the deterministic chaos soak."""

import pytest

from repro.faults.service import (
    JOB_BOUND_KINDS,
    SERVICE_FAULT_KINDS,
    ServiceFaultPlan,
    ServiceFaultSpec,
    seed_for_run,
)
from repro.supervision import ChaosConfig, chaos_fingerprint, run_chaos


class TestServiceFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ServiceFaultSpec(kind="gremlins")

    def test_round_trip(self):
        spec = ServiceFaultSpec(kind="slow-io", target="cache-put",
                                seconds=0.5, count=3)
        assert ServiceFaultSpec.from_dict(spec.to_dict()) == spec


class TestServiceFaultPlan:
    def test_same_run_id_same_schedule(self):
        one = ServiceFaultPlan.sample("chaos-42", jobs=8)
        two = ServiceFaultPlan.sample("chaos-42", jobs=8)
        assert one.to_dict() == two.to_dict()
        assert one.seed == seed_for_run("chaos-42")

    def test_different_run_id_different_schedule(self):
        one = ServiceFaultPlan.sample("chaos-1", jobs=8)
        two = ServiceFaultPlan.sample("chaos-2", jobs=8)
        assert one.to_dict() != two.to_dict()

    def test_job_bound_kinds_get_distinct_indices(self):
        plan = ServiceFaultPlan.sample("chaos-0", jobs=20)
        indices = [spec.job_index for spec in plan.faults
                   if spec.kind in JOB_BOUND_KINDS]
        assert len(indices) == len(JOB_BOUND_KINDS)
        assert len(set(indices)) == len(indices)
        assert all(0 <= i < 20 for i in indices)

    def test_iterations_land_mid_run(self):
        plan = ServiceFaultPlan.sample("chaos-0", jobs=20,
                                       max_iteration=30)
        for spec in plan.specs_of("hang", "crash"):
            assert 15 <= spec.iteration < 29

    def test_loop_plan_embeds_only_that_jobs_faults(self):
        plan = ServiceFaultPlan.sample("chaos-0", jobs=20)
        hang = plan.specs_of("hang")[0]
        loop = plan.loop_plan(hang.job_index)
        assert loop is not None
        assert [f.kind for f in loop.faults] == ["hang"]
        clean = [i for i in range(20)
                 if i not in {s.job_index for s in plan.faults}]
        assert plan.loop_plan(clean[0]) is None

    def test_io_hook_budget_exhausts(self):
        plan = ServiceFaultPlan.sample("chaos-0", jobs=4,
                                       slow_io_seconds=0.0, slow_io_ops=2)
        hook = plan.io_hook("cache-put")
        for _ in range(5):
            hook("cache-put")
            hook("journal-append")   # filtered out by the targets arg
        slow = [e for e in plan.injection_log() if e["kind"] == "slow-io"]
        assert len(slow) == 2
        assert all(e["target"] == "cache-put" for e in slow)

    def test_dispatch_chaos_budget(self):
        plan = ServiceFaultPlan.sample("chaos-0", jobs=4,
                                       crash_attach_count=2)
        spec = plan.specs_of("crash-on-attach")[0]
        plan.bind_job(spec.job_index, "job-victim")
        assert plan.dispatch_chaos("job-other", 0) is None
        first = plan.dispatch_chaos("job-victim", 0)
        assert first == {"crash_on_attach": True, "exitcode": spec.exitcode}
        assert plan.dispatch_chaos("job-victim", 1) is not None
        assert plan.dispatch_chaos("job-victim", 2) is None  # budget spent
        assert plan.injected_kinds() == ["crash-on-attach",
                                         "crash-on-attach"]

    def test_round_trip(self):
        plan = ServiceFaultPlan.sample("chaos-9", jobs=6)
        again = ServiceFaultPlan.from_dict(plan.to_dict())
        assert again.to_dict() == plan.to_dict()


@pytest.mark.slow
class TestChaosSoak:
    def test_small_soak_is_clean(self, tmp_path):
        config = ChaosConfig(
            seed=7, jobs=4, workers=2, cells=64, iterations=16,
            checkpoint_every=4, deadline=25.0, hang_timeout=2.0,
            soak_timeout=150.0, state_dir=str(tmp_path / "chaos"),
        )
        report = run_chaos(config)
        assert report.ok, report.violations
        assert len(report.tickets) >= config.jobs
        assert all(state in ("done", "cancelled")
                   for state in report.tickets.values())
        # Resume identity: every faulted/twin pair bit-identical.
        assert report.pairs and all(p["identical"] for p in report.pairs)
        if not report.inline:
            # The hung job was preempted well inside the deadline.
            assert report.preemption["latency_s"] < config.deadline
            assert report.quarantine["restored"]
            assert report.restart.get("resumed", 0) >= 1
        assert report.cache_check.get("recovered")
        assert report.shed.get("raised")
        assert chaos_fingerprint(report)
