"""Tests for the command-line interface (in-process, no subprocess)."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_place_defaults(self):
        args = build_parser().parse_args(["place", "fft_1"])
        assert args.placer == "xplace"
        assert args.scale == 0.01
        assert args.route is False

    def test_unknown_placer_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["place", "fft_1", "--placer", "vpr"])


class TestCommands:
    def test_stats_named_design(self, capsys):
        assert main(["stats", "fft_1", "--cells", "100"]) == 0
        out = capsys.readouterr().out
        assert "fft_1" in out and "utilization" in out

    def test_stats_unknown_design(self):
        with pytest.raises(SystemExit, match="neither"):
            main(["stats", "not_a_design"])

    def test_generate_then_stats_roundtrip(self, tmp_path, capsys):
        out_dir = str(tmp_path / "bench")
        assert main(["generate", "fft_1", "--cells", "80", "--out", out_dir]) == 0
        aux = os.path.join(out_dir, "fft_1.aux")
        assert os.path.exists(aux)
        assert main(["stats", aux]) == 0
        out = capsys.readouterr().out
        assert "cells" in out

    def test_place_writes_pl_and_svg(self, tmp_path, capsys):
        pl = str(tmp_path / "out.pl")
        svg = str(tmp_path / "out.svg")
        code = main(
            ["place", "fft_1", "--cells", "120", "--dp-passes", "0",
             "--out", pl, "--svg", svg]
        )
        assert code == 0
        assert os.path.exists(pl)
        assert os.path.exists(svg)
        out = capsys.readouterr().out
        assert "HPWL" in out and "legal=True" in out

    def test_place_quadratic(self, capsys):
        code = main(["place", "fft_1", "--cells", "100", "--placer",
                     "quadratic"])
        assert code == 0
        assert "quadratic GP" in capsys.readouterr().out

    def test_place_with_routing(self, capsys):
        code = main(
            ["place", "fft_1", "--cells", "100", "--dp-passes", "0", "--route"]
        )
        assert code == 0
        assert "top5 overflow" in capsys.readouterr().out


class TestBatchCommand:
    @staticmethod
    def _manifest(tmp_path, entries):
        import json

        path = str(tmp_path / "manifest.json")
        with open(path, "w") as fh:
            json.dump(entries, fh)
        return path

    def test_batch_runs_and_caches(self, tmp_path, capsys):
        manifest = self._manifest(tmp_path, [
            {"design": "fft_1", "cells": 250, "seed": s,
             "params": {"max_iterations": 30, "min_iterations": 20},
             "pipeline": "tests.runtime_helpers:fake_pipeline"}
            for s in (1, 2)
        ])
        cache_dir = str(tmp_path / "cache")
        events = str(tmp_path / "events.jsonl")
        argv = ["batch", manifest, "--workers", "1",
                "--cache-dir", cache_dir, "--events", events]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 done, 0 cached: true, 0 failed" in out
        assert os.path.exists(events)
        # Rerun: both jobs must come from the cache, no recompute.
        assert main(argv[:-2]) == 0
        out = capsys.readouterr().out
        assert "0 done, 2 cached: true, 0 failed" in out
        assert "true" in out

    def test_batch_failure_sets_exit_code(self, tmp_path, capsys):
        manifest = self._manifest(tmp_path, [
            {"design": "fft_1", "cells": 250,
             "pipeline": "tests.runtime_helpers:crashy_pipeline"},
        ])
        code = main(["batch", manifest, "--no-cache"])
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.err
        assert "injected stage crash" in captured.err

    def test_batch_bad_manifest(self, tmp_path):
        manifest = self._manifest(tmp_path, [{"turbo": True}])
        with pytest.raises(ValueError, match="job #0"):
            main(["batch", manifest, "--no-cache"])


class TestRecoveryFlags:
    def test_place_recover_flag_parses(self):
        args = build_parser().parse_args(
            ["place", "fft_1", "--recover", "/tmp/ckpt",
             "--checkpoint-every", "10"]
        )
        assert args.recover == "/tmp/ckpt"
        assert args.checkpoint_every == 10

    def test_batch_resume_requires_checkpoint_dir(self, tmp_path, capsys):
        manifest = str(tmp_path / "m.json")
        import json

        with open(manifest, "w") as fh:
            json.dump([{"design": "fft_1", "cells": 250,
                        "pipeline": "tests.runtime_helpers:fake_pipeline"}],
                      fh)
        assert main(["batch", manifest, "--no-cache", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_place_with_recover_runs_and_clears_spill(self, tmp_path,
                                                      capsys):
        ckpt = str(tmp_path / "ckpt")
        code = main(["place", "fft_1", "--cells", "120",
                     "--max-iterations", "40", "--recover", ckpt,
                     "--checkpoint-every", "10"])
        assert code in (0, 1)  # legality is the exit code, not recovery
        assert "HPWL" in capsys.readouterr().out
        # Successful run leaves no spill behind.
        assert not os.path.exists(os.path.join(ckpt, "checkpoint.json"))

    def test_batch_checkpoint_dir_spills_per_job(self, tmp_path, capsys):
        import json

        manifest = str(tmp_path / "m.json")
        with open(manifest, "w") as fh:
            json.dump([{"design": "fft_1", "cells": 120, "seed": 1,
                        "params": {"max_iterations": 40,
                                   "checkpoint_every": 10},
                        "faults": {"faults": [
                            {"kind": "abort", "iteration": 25}]}}], fh)
        ckpt = str(tmp_path / "ckpt")
        code = main(["batch", manifest, "--no-cache",
                     "--checkpoint-dir", ckpt])
        assert code == 1  # the abort fails the job...
        capsys.readouterr()
        spills = [os.path.join(root, name)
                  for root, _, files in os.walk(ckpt)
                  for name in files if name == "checkpoint.json"]
        assert len(spills) == 1  # ...but its checkpoint survives


class TestExploreCommand:
    def test_explore_parser_defaults(self):
        args = build_parser().parse_args(["explore", "fft_1"])
        assert args.population == 4
        assert args.rounds == 3
        assert args.survivors == 2
        assert args.budget_core_seconds is None
        assert args.bench is None

    def test_explore_runs_and_writes_report(self, tmp_path, capsys):
        import json

        out = str(tmp_path / "explore.json")
        code = main([
            "explore", "fft_1", "--cells", "150", "--population", "2",
            "--rounds", "2", "--survivors", "1", "--seed", "5",
            "--max-iterations", "30", "--workdir", str(tmp_path / "wd"),
            "--no-cache", "--out", out,
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "winner: slot" in text
        with open(out) as fh:
            data = json.load(fh)
        assert data["schema"] == 1
        assert data["best_hpwl"] > 0
        assert len(data["rounds"]) == 2

    def test_explore_unknown_design_rejected(self, capsys):
        assert main(["explore", "not_a_design"]) == 2
        assert "neither" in capsys.readouterr().err
