"""Tests for the core engine pieces: params, scheduler, recorder,
initializer, gradient engine."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import (
    Evaluator,
    GradientEngine,
    PlacementParams,
    Recorder,
    Scheduler,
    initial_positions,
)
from repro.core.gradient_engine import sigma_of_omega
from repro.core.recorder import IterationRecord
from repro.density import DensitySystem


@pytest.fixture(scope="module")
def netlist():
    return generate_circuit(CircuitSpec("core", num_cells=200, num_macros=2))


@pytest.fixture(scope="module")
def density(netlist):
    return DensitySystem(netlist, 0.9, rng=np.random.default_rng(0))


class TestParams:
    def test_defaults_valid(self):
        PlacementParams()

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            PlacementParams(target_density=0)
        with pytest.raises(ValueError):
            PlacementParams(stop_overflow=-1)
        with pytest.raises(ValueError):
            PlacementParams(max_iterations=5, min_iterations=10)
        with pytest.raises(ValueError):
            PlacementParams(optimizer="sgd")
        with pytest.raises(ValueError):
            PlacementParams(slow_update_period=0)

    def test_gamma_schedule_endpoints(self):
        params = PlacementParams()
        # ePlace endpoints: 80·bin at OVFL=1, 0.8·bin at OVFL=0.1.
        assert params.gamma(1.0, bin_size=2.0) == pytest.approx(160.0, rel=1e-6)
        assert params.gamma(0.1, bin_size=2.0) == pytest.approx(1.6, rel=1e-6)

    def test_gamma_monotone_in_overflow(self):
        params = PlacementParams()
        gammas = [params.gamma(o, 1.0) for o in (1.0, 0.5, 0.2, 0.05)]
        assert all(a > b for a, b in zip(gammas, gammas[1:]))


class TestScheduler:
    def test_lambda_initialization(self):
        sched = Scheduler(PlacementParams(), bin_size=1.0)
        lam = sched.initialize_lambda(100.0, 10.0)
        assert lam == pytest.approx(1e-2)

    def test_lambda_grows_with_updates(self):
        sched = Scheduler(PlacementParams(), bin_size=1.0)
        sched.initialize_lambda(100.0, 10.0)
        lam0 = sched.lam
        for i in range(5):
            sched.update(overflow=0.9, hpwl=1000.0 + i)
        assert sched.lam > lam0

    def test_mu_clamped_on_hpwl_spike(self):
        params = PlacementParams(delta_hpwl_ref=100.0)
        sched = Scheduler(params, bin_size=1.0)
        sched.initialize_lambda(1.0, 1.0)
        sched.update(0.9, hpwl=0.0)
        lam_before = sched.lam
        # Enormous HPWL regression → μ clamps at mu_min.
        sched.update(0.9, hpwl=1e9)
        assert sched.lam == pytest.approx(lam_before * params.mu_min)

    def test_stage_aware_slows_updates(self):
        sched = Scheduler(PlacementParams(), bin_size=1.0)
        decisions = [sched.should_update_params(omega=0.7) for __ in range(6)]
        assert decisions == [False, False, True, False, False, True]

    def test_updates_every_iteration_outside_band(self):
        sched = Scheduler(PlacementParams(), bin_size=1.0)
        assert all(sched.should_update_params(omega=0.1) for __ in range(4))
        assert all(sched.should_update_params(omega=0.99) for __ in range(4))

    def test_stage_aware_off(self):
        sched = Scheduler(PlacementParams(stage_aware_schedule=False), 1.0)
        assert all(sched.should_update_params(omega=0.7) for __ in range(5))

    def test_stop_conditions(self):
        params = PlacementParams(min_iterations=10, max_iterations=50,
                                 stop_overflow=0.07)
        sched = Scheduler(params, 1.0)
        assert not sched.should_stop(iteration=3, overflow=0.01)  # too early
        assert sched.should_stop(iteration=20, overflow=0.05)
        assert not sched.should_stop(iteration=20, overflow=0.5)
        assert sched.should_stop(iteration=49, overflow=0.5)  # max iters

    def test_update_before_init_raises(self):
        sched = Scheduler(PlacementParams(), 1.0)
        with pytest.raises(RuntimeError):
            sched.update(0.5, 100.0)


class TestRecorder:
    def _record(self, i, hpwl=1.0, skip=False):
        return IterationRecord(
            iteration=i, hpwl=hpwl, wa=hpwl, overflow=0.5, gamma=1.0,
            lam=0.1, omega=0.2, grad_ratio=0.01,
            density_computed=not skip, step_length=1.0,
        )

    def test_traces(self):
        rec = Recorder()
        for i in range(5):
            rec.log(self._record(i, hpwl=10.0 - i))
        assert len(rec) == 5
        assert rec.trace("hpwl").tolist() == [10, 9, 8, 7, 6]
        assert rec.best_hpwl() == 6
        assert rec.last.iteration == 4

    def test_skip_count(self):
        rec = Recorder()
        rec.log(self._record(0))
        rec.log(self._record(1, skip=True))
        rec.log(self._record(2, skip=True))
        assert rec.density_skip_count() == 2

    def test_empty_summary(self):
        rec = Recorder()
        assert "no iterations" in rec.summary()
        assert rec.best_hpwl() == float("inf")
        assert rec.last is None


class TestInitializer:
    def test_movable_near_center(self, netlist):
        x, y = initial_positions(netlist, rng=np.random.default_rng(0))
        region = netlist.region
        mov = netlist.movable
        assert abs(np.mean(x[mov]) - region.center[0]) < 0.2 * region.width
        assert abs(np.mean(y[mov]) - region.center[1]) < 0.2 * region.height
        assert np.std(x[mov]) < 0.1 * region.width

    def test_fixed_cells_untouched(self, netlist):
        x, y = initial_positions(netlist)
        fixed = ~netlist.movable
        np.testing.assert_array_equal(x[fixed], netlist.fixed_x[fixed])
        np.testing.assert_array_equal(y[fixed], netlist.fixed_y[fixed])

    def test_inside_region(self, netlist):
        x, y = initial_positions(netlist)
        mov = netlist.movable
        region = netlist.region
        assert np.all(x[mov] >= region.xl) and np.all(x[mov] <= region.xh)

    def test_deterministic(self, netlist):
        a = initial_positions(netlist, rng=np.random.default_rng(5))
        b = initial_positions(netlist, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a[0], b[0])


class TestSigma:
    def test_sigma_high_early_low_late(self):
        assert sigma_of_omega(0.0) > 0.8
        assert sigma_of_omega(0.5) < 0.01
        assert sigma_of_omega(0.95) < 1e-6

    def test_sigma_monotone_decreasing(self):
        omegas = np.linspace(0, 1, 21)
        sigmas = [sigma_of_omega(o) for o in omegas]
        assert all(a >= b for a, b in zip(sigmas, sigmas[1:]))
        assert all(0 <= s <= 1 for s in sigmas)


class TestGradientEngine:
    def test_compute_and_assemble_shapes(self, netlist, density):
        params = PlacementParams()
        engine = GradientEngine(netlist, density, params)
        rng = np.random.default_rng(0)
        n = engine.num_variables
        region = netlist.region
        pos_x = rng.uniform(region.xl, region.xh, n)
        pos_y = rng.uniform(region.yl, region.yh, n)
        result = engine.compute(0, pos_x, pos_y, gamma=5.0, lam_for_skip=0.0)
        assert result.wl_grad_x.shape == (n,)
        assert result.density_grad_x.shape == (n,)
        assert np.isfinite(result.hpwl)
        gx, gy = engine.assemble(result, pos_x, pos_y, lam=0.01)
        assert gx.shape == (n,) and gy.shape == (n,)
        assert np.all(np.isfinite(gx))

    def test_fillers_feel_no_wirelength(self, netlist, density):
        engine = GradientEngine(netlist, density, PlacementParams())
        rng = np.random.default_rng(1)
        n = engine.num_variables
        region = netlist.region
        pos_x = rng.uniform(region.xl, region.xh, n)
        pos_y = rng.uniform(region.yl, region.yh, n)
        result = engine.compute(0, pos_x, pos_y, 5.0, 0.0)
        nm = len(netlist.movable_index)
        assert np.all(result.wl_grad_x[nm:] == 0)
        assert np.all(result.wl_grad_y[nm:] == 0)

    def test_skipping_reuses_cache(self, netlist, density):
        params = PlacementParams(operator_skipping=True)
        engine = GradientEngine(netlist, density, params)
        rng = np.random.default_rng(2)
        n = engine.num_variables
        region = netlist.region
        pos_x = rng.uniform(region.xl, region.xh, n)
        pos_y = rng.uniform(region.yl, region.yh, n)
        first = engine.compute(0, pos_x, pos_y, 5.0, lam_for_skip=1e-9)
        assert first.density_computed
        second = engine.compute(1, pos_x + 0.1, pos_y, 5.0, lam_for_skip=1e-9)
        assert not second.density_computed
        assert second.overflow == first.overflow

    def test_no_skipping_when_disabled(self, netlist, density):
        params = PlacementParams(operator_skipping=False)
        engine = GradientEngine(netlist, density, params)
        rng = np.random.default_rng(3)
        n = engine.num_variables
        region = netlist.region
        pos_x = rng.uniform(region.xl, region.xh, n)
        pos_y = rng.uniform(region.yl, region.yh, n)
        engine.compute(0, pos_x, pos_y, 5.0, 1e-9)
        second = engine.compute(1, pos_x, pos_y, 5.0, 1e-9)
        assert second.density_computed

    def test_neural_blending_changes_gradient(self, netlist, density):
        params = PlacementParams(neural_guidance=True)

        def fake_predictor(density_map):
            return np.ones_like(density_map), -np.ones_like(density_map)

        engine = GradientEngine(netlist, density, params, fake_predictor)
        rng = np.random.default_rng(4)
        n = engine.num_variables
        region = netlist.region
        pos_x = rng.uniform(region.xl, region.xh, n)
        pos_y = rng.uniform(region.yl, region.yh, n)
        result = engine.compute(0, pos_x, pos_y, 5.0, 0.0)
        plain_x, __ = engine.assemble(result, pos_x, pos_y, lam=0.1, sigma=0.0)
        blended_x, __ = engine.assemble(result, pos_x, pos_y, lam=0.1, sigma=0.9)
        assert not np.allclose(plain_x, blended_x)


class TestEvaluator:
    def test_matches_direct_hpwl(self, netlist, density):
        from repro.wirelength import hpwl

        evaluator = Evaluator(netlist, density)
        rng = np.random.default_rng(5)
        region = netlist.region
        x = rng.uniform(region.xl, region.xh, netlist.num_cells)
        y = rng.uniform(region.yl, region.yh, netlist.num_cells)
        ev = evaluator.evaluate(x, y)
        assert ev.hpwl == pytest.approx(hpwl(netlist, x, y))
        assert ev.overflow >= 0
        assert ev.max_density > 0
