"""Tests for bins, density scatter/gather, overflow and fillers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import CircuitSpec, generate_circuit
from repro.density import (
    BinGrid,
    DensityScatter,
    DensitySystem,
    FillerCells,
    overflow_ratio,
    rasterize_exact,
)
from repro.netlist import PlacementRegion


@pytest.fixture
def grid():
    return BinGrid(PlacementRegion(0, 0, 64, 64), 16)


class TestBinGrid:
    def test_bin_geometry(self, grid):
        assert grid.bin_w == 4.0
        assert grid.bin_h == 4.0
        assert grid.bin_area == 16.0
        assert grid.shape == (16, 16)

    def test_centers(self, grid):
        xs, ys = grid.centers()
        assert xs[0] == 2.0
        assert xs[-1] == 62.0

    def test_bin_index_clamped(self, grid):
        i, j = grid.bin_index(np.array([-5.0, 100.0, 10.0]), np.array([0.0, 0.0, 10.0]))
        assert i.tolist() == [0, 15, 2]

    def test_for_netlist_power_of_two(self):
        nl = generate_circuit(CircuitSpec("g", num_cells=500))
        grid = BinGrid.for_netlist(nl)
        assert grid.m & (grid.m - 1) == 0
        assert 16 <= grid.m <= 512

    def test_explicit_m(self):
        nl = generate_circuit(CircuitSpec("g2", num_cells=100))
        assert BinGrid.for_netlist(nl, m=64).m == 64

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            BinGrid(PlacementRegion(0, 0, 10, 10), 1)


class TestScatter:
    def test_area_conservation_inside_die(self, grid):
        rng = np.random.default_rng(3)
        n = 30
        x = rng.uniform(8, 56, n)
        y = rng.uniform(8, 56, n)
        w = rng.uniform(0.5, 5, n)
        h = rng.uniform(0.5, 5, n)
        density = DensityScatter(grid).scatter(x, y, w, h)
        assert density.sum() == pytest.approx(np.sum(w * h), rel=1e-9)

    def test_matches_exact_rasterizer_without_smoothing(self, grid):
        rng = np.random.default_rng(4)
        n = 25
        x = rng.uniform(10, 54, n)
        y = rng.uniform(10, 54, n)
        w = rng.uniform(1, 8, n)
        h = rng.uniform(1, 8, n)
        fast = DensityScatter(grid, smooth=False).scatter(x, y, w, h)
        exact = rasterize_exact(grid, x, y, w, h)
        np.testing.assert_allclose(fast, exact, atol=1e-9)

    def test_smoothing_preserves_area(self, grid):
        # Tiny cells far below bin size still deposit their full area.
        x = np.array([30.0])
        y = np.array([30.0])
        w = np.array([0.3])
        h = np.array([0.4])
        density = DensityScatter(grid, smooth=True).scatter(x, y, w, h)
        assert density.sum() == pytest.approx(0.12, rel=1e-9)

    def test_single_cell_centered_in_bin(self, grid):
        density = DensityScatter(grid, smooth=False).scatter(
            np.array([2.0]), np.array([2.0]), np.array([4.0]), np.array([4.0])
        )
        assert density[0, 0] == pytest.approx(16.0)
        assert density.sum() == pytest.approx(16.0)

    def test_out_accumulates_in_place(self, grid):
        scatter = DensityScatter(grid, smooth=False)
        buf = np.zeros(grid.shape)
        args = (np.array([2.0]), np.array([2.0]), np.array([4.0]), np.array([4.0]))
        scatter.scatter(*args, out=buf)
        scatter.scatter(*args, out=buf)
        assert buf[0, 0] == pytest.approx(32.0)

    def test_empty_input(self, grid):
        density = DensityScatter(grid).scatter(
            np.empty(0), np.empty(0), np.empty(0), np.empty(0)
        )
        assert density.sum() == 0.0

    def test_gather_is_adjoint_of_scatter(self, grid):
        rng = np.random.default_rng(5)
        n = 40
        x = rng.uniform(5, 59, n)
        y = rng.uniform(5, 59, n)
        w = rng.uniform(0.5, 6, n)
        h = rng.uniform(0.5, 6, n)
        field = rng.normal(size=grid.shape)
        scatter = DensityScatter(grid)
        lhs = float(np.sum(scatter.scatter(x, y, w, h) * field))
        rhs = float(np.sum(scatter.gather(field, x, y, w, h)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    @given(
        cx=st.floats(5, 59),
        cy=st.floats(5, 59),
        w=st.floats(0.2, 10),
        h=st.floats(0.2, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_area_conservation_property(self, cx, cy, w, h):
        grid = BinGrid(PlacementRegion(0, 0, 64, 64), 16)
        density = DensityScatter(grid).scatter(
            np.array([cx]), np.array([cy]), np.array([w]), np.array([h])
        )
        # Cells may spill past the die edge, losing area; never gaining.
        assert density.sum() <= w * h + 1e-9


class TestOverflow:
    def test_zero_when_under_target(self, grid):
        density = np.full(grid.shape, 0.5)
        assert overflow_ratio(density, grid, 0.9, movable_area=100.0) == 0.0

    def test_known_value(self, grid):
        density = np.zeros(grid.shape)
        density[0, 0] = 1.5  # exceeds target 1.0 by 0.5
        ovfl = overflow_ratio(density, grid, 1.0, movable_area=32.0)
        # 0.5 excess density * 16 bin area / 32 movable area.
        assert ovfl == pytest.approx(0.25)

    def test_zero_movable_area(self, grid):
        assert overflow_ratio(np.ones(grid.shape), grid, 0.5, 0.0) == 0.0

    def test_decreases_as_cells_spread(self):
        nl = generate_circuit(CircuitSpec("ov", num_cells=300, num_macros=0))
        system = DensitySystem(nl, target_density=0.9, use_fillers=False)
        region = nl.region
        rng = np.random.default_rng(0)
        # All cells piled at the center vs spread uniformly.
        x0 = np.full(nl.num_cells, region.center[0])
        y0 = np.full(nl.num_cells, region.center[1])
        xs = rng.uniform(region.xl, region.xh, nl.num_cells)
        ys = rng.uniform(region.yl, region.yh, nl.num_cells)
        piled = system.evaluate(x0, y0).overflow
        spread = system.evaluate(xs, ys).overflow
        assert piled > spread


class TestFillers:
    def test_filler_area_budget(self):
        nl = generate_circuit(CircuitSpec("fl", num_cells=400, num_macros=2))
        fillers = FillerCells.for_netlist(nl, target_density=0.9)
        fixed_area = float(np.sum(nl.cell_area[~nl.movable]))
        free = nl.region.area - fixed_area
        expected = max(0.9 * free - nl.movable_area, 0.0)
        assert fillers.total_area <= expected + fillers.width * fillers.height
        assert fillers.total_area >= expected - fillers.width * fillers.height

    def test_fillers_inside_region(self):
        nl = generate_circuit(CircuitSpec("fl2", num_cells=200))
        fillers = FillerCells.for_netlist(nl, target_density=0.95)
        region = nl.region
        assert np.all(fillers.x >= region.xl)
        assert np.all(fillers.x <= region.xh)

    def test_no_fillers_when_dense(self):
        nl = generate_circuit(
            CircuitSpec("fl3", num_cells=200, utilization=0.95, macro_fraction=0.0,
                        num_macros=0)
        )
        fillers = FillerCells.for_netlist(nl, target_density=0.5)
        # Movable area alone exceeds the target budget: no fillers fit.
        assert fillers.count == 0

    def test_deterministic_with_rng(self):
        nl = generate_circuit(CircuitSpec("fl4", num_cells=200))
        a = FillerCells.for_netlist(nl, 0.9, rng=np.random.default_rng(9))
        b = FillerCells.for_netlist(nl, 0.9, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a.x, b.x)
