"""Tests for the detailed placement engine and its operators."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams, XPlacer
from repro.detail import DetailedPlacer, PlacementRows
from repro.legalize import AbacusLegalizer, check_legal
from repro.wirelength import hpwl


@pytest.fixture(scope="module")
def legal_placement():
    nl = generate_circuit(
        CircuitSpec("dp", num_cells=300, num_macros=2, num_pads=16)
    )
    gp = XPlacer(nl, PlacementParams(max_iterations=400)).run()
    lx, ly = AbacusLegalizer(nl).legalize(gp.x, gp.y)
    return nl, lx, ly


class TestPlacementRows:
    def test_every_movable_assigned(self, legal_placement):
        nl, lx, ly = legal_placement
        rows = PlacementRows(nl, lx, ly)
        assert set(rows.cell_slot) == set(nl.movable_index.tolist())

    def test_segments_sorted(self, legal_placement):
        nl, lx, ly = legal_placement
        rows = PlacementRows(nl, lx, ly)
        for row_segs in rows.members:
            for cells in row_segs:
                xs = [rows.x[c] for c in cells]
                assert xs == sorted(xs)

    def test_span_bounds_neighbors(self, legal_placement):
        nl, lx, ly = legal_placement
        rows = PlacementRows(nl, lx, ly)
        for row_segs in rows.members:
            for cells in row_segs:
                for c in cells:
                    left, right = rows.span(c)
                    assert left - 1e-6 <= rows.x[c] - nl.cell_w[c] / 2
                    assert rows.x[c] + nl.cell_w[c] / 2 <= right + 1e-6

    def test_move_keeps_sorted(self, legal_placement):
        nl, lx, ly = legal_placement
        rows = PlacementRows(nl, lx, ly)
        cell = int(nl.movable_index[0])
        row_i, seg_i = rows.cell_slot[cell]
        left, right = rows.span(cell)
        target = (left + right) / 2
        rows.move(cell, target, row_i, seg_i)
        cells = rows.members[row_i][seg_i]
        xs = [rows.x[c] for c in cells]
        assert xs == sorted(xs)

    def test_unlegalized_input_rejected(self, legal_placement):
        nl, lx, ly = legal_placement
        bad_x = lx.copy()
        mov = nl.movable_index
        # Push a cell into a macro blockage if one exists; otherwise skip.
        fixed = np.flatnonzero((~nl.movable) & (nl.cell_area > 0))
        if len(fixed) == 0:
            pytest.skip("no macros in this design")
        bad_x[mov[0]] = nl.fixed_x[fixed[0]]
        bad_y = ly.copy()
        bad_y[mov[0]] = nl.fixed_y[fixed[0]]
        with pytest.raises(ValueError, match="outside every free segment"):
            PlacementRows(nl, bad_x, bad_y)


class TestDetailedPlacer:
    @pytest.fixture(scope="class")
    def dp_result(self, legal_placement):
        nl, lx, ly = legal_placement
        return nl, DetailedPlacer(nl, max_passes=2).place(lx, ly)

    def test_improves_hpwl(self, dp_result):
        nl, result = dp_result
        assert result.hpwl_after <= result.hpwl_before
        assert result.moves_applied > 0

    def test_preserves_legality(self, dp_result):
        nl, result = dp_result
        report = check_legal(nl, result.x, result.y)
        assert report.legal, report.summary()

    def test_hpwl_reported_correctly(self, dp_result):
        nl, result = dp_result
        assert result.hpwl_after == pytest.approx(
            hpwl(nl, result.x, result.y), rel=1e-9
        )

    def test_improvement_property(self, dp_result):
        __, result = dp_result
        assert 0 <= result.improvement < 0.2

    def test_fixed_cells_untouched(self, legal_placement, dp_result):
        nl, lx, ly = legal_placement
        __, result = dp_result
        fixed = ~nl.movable
        np.testing.assert_array_equal(result.x[fixed], lx[fixed])

    def test_zero_passes_is_identity(self, legal_placement):
        nl, lx, ly = legal_placement
        result = DetailedPlacer(nl, max_passes=0).place(lx, ly)
        np.testing.assert_array_equal(result.x, lx)
        assert result.hpwl_after == result.hpwl_before

    def test_nets_hpwl_matches_global(self, legal_placement):
        nl, lx, ly = legal_placement
        dp = DetailedPlacer(nl)
        all_nets = np.arange(nl.num_nets)
        assert dp._nets_hpwl(all_nets, lx, ly) == pytest.approx(
            hpwl(nl, lx, ly), rel=1e-9
        )

    def test_nets_of_returns_sorted_unique(self, legal_placement):
        nl, __, __ = legal_placement
        dp = DetailedPlacer(nl)
        cell = int(nl.movable_index[5])
        nets = dp.nets_of([cell, cell])
        assert len(nets) == len(set(nets.tolist()))
        # Each returned net really contains the cell.
        for e in nets:
            lo, hi = nl.net_start[e], nl.net_start[e + 1]
            assert cell in nl.pin2cell[lo:hi]
