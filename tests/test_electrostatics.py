"""Spectral Poisson solver tests: oracle match, PDE residual, symmetry."""

import numpy as np
import pytest

from repro.density import BinGrid, DensitySystem, ElectrostaticSolver
from repro.density.electrostatics import _eval_cos, _eval_sin
from repro.benchgen import CircuitSpec, generate_circuit
from repro.netlist import PlacementRegion


@pytest.fixture
def solver():
    grid = BinGrid(PlacementRegion(0, 0, 32, 32), 16)
    return ElectrostaticSolver(grid)


class TestTransformHelpers:
    def test_eval_cos_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        m = 12
        coef = rng.normal(size=m)
        i = np.arange(m)
        angles = np.pi * np.outer(np.arange(m), (2 * i + 1)) / (2 * m)
        expected = np.cos(angles).T @ coef
        np.testing.assert_allclose(_eval_cos(coef, axis=0), expected, atol=1e-12)

    def test_eval_sin_matches_bruteforce(self):
        rng = np.random.default_rng(1)
        m = 12
        coef = rng.normal(size=m)
        i = np.arange(m)
        angles = np.pi * np.outer(np.arange(m), (2 * i + 1)) / (2 * m)
        expected = np.sin(angles).T @ coef
        np.testing.assert_allclose(_eval_sin(coef, axis=0), expected, atol=1e-12)

    def test_eval_along_axis1(self):
        rng = np.random.default_rng(2)
        m = 8
        coef = rng.normal(size=(m, m))
        by_axis1 = _eval_cos(coef, axis=1)
        by_axis0 = _eval_cos(coef.T, axis=0).T
        np.testing.assert_allclose(by_axis1, by_axis0, atol=1e-12)


class TestSolver:
    def test_matches_bruteforce_reference(self, solver):
        rng = np.random.default_rng(3)
        rho = rng.uniform(0, 1, solver.grid.shape)
        fast = solver.solve(rho)
        ref = solver.solve_reference(rho)
        np.testing.assert_allclose(fast.potential, ref.potential, atol=1e-12)
        np.testing.assert_allclose(fast.field_x, ref.field_x, atol=1e-12)
        np.testing.assert_allclose(fast.field_y, ref.field_y, atol=1e-12)
        assert fast.energy == pytest.approx(ref.energy)

    def test_poisson_residual_on_smooth_density(self, solver):
        grid = solver.grid
        m = grid.m
        x, y = np.meshgrid(np.arange(m), np.arange(m), indexing="ij")
        rho = np.cos(np.pi * (x + 0.5) / m) * np.cos(np.pi * (y + 0.5) / m)
        sol = solver.solve(rho)
        psi = sol.potential
        bw, bh = grid.bin_w, grid.bin_h
        lap = (
            (psi[2:, 1:-1] - 2 * psi[1:-1, 1:-1] + psi[:-2, 1:-1]) / bw**2
            + (psi[1:-1, 2:] - 2 * psi[1:-1, 1:-1] + psi[1:-1, :-2]) / bh**2
        )
        residual = np.abs(lap + rho[1:-1, 1:-1]).max()
        assert residual < 0.01 * np.abs(rho).max()

    def test_potential_zero_mean(self, solver):
        rng = np.random.default_rng(4)
        rho = rng.uniform(0, 2, solver.grid.shape)
        sol = solver.solve(rho)
        assert abs(sol.potential.mean()) < 1e-10

    def test_uniform_density_gives_zero_field(self, solver):
        sol = solver.solve(np.full(solver.grid.shape, 0.7))
        assert np.abs(sol.field_x).max() < 1e-12
        assert np.abs(sol.field_y).max() < 1e-12
        assert sol.energy == pytest.approx(0.0, abs=1e-12)

    def test_field_points_away_from_charge_blob(self, solver):
        m = solver.grid.m
        rho = np.zeros(solver.grid.shape)
        rho[m // 2 - 1 : m // 2 + 1, m // 2 - 1 : m // 2 + 1] = 1.0
        sol = solver.solve(rho)
        # Field x component left of the blob is negative (pushes left).
        assert sol.field_x[2, m // 2] < 0
        assert sol.field_x[m - 3, m // 2] > 0
        assert sol.field_y[m // 2, 2] < 0
        assert sol.field_y[m // 2, m - 3] > 0

    def test_xy_symmetry(self, solver):
        """The PDE is symmetric under transposition (paper §3.3.1)."""
        rng = np.random.default_rng(5)
        rho = rng.uniform(0, 1, solver.grid.shape)
        sol = solver.solve(rho)
        sol_t = solver.solve(rho.T)
        np.testing.assert_allclose(sol_t.field_y, sol.field_x.T, atol=1e-10)
        np.testing.assert_allclose(sol_t.field_x, sol.field_y.T, atol=1e-10)

    def test_energy_nonnegative(self, solver):
        rng = np.random.default_rng(6)
        for __ in range(5):
            rho = rng.uniform(0, 3, solver.grid.shape)
            assert solver.solve(rho).energy >= -1e-9

    def test_shape_mismatch_rejected(self, solver):
        with pytest.raises(ValueError):
            solver.solve(np.zeros((4, 4)))


class TestDensitySystem:
    @pytest.fixture(scope="class")
    def netlist(self):
        return generate_circuit(CircuitSpec("ds", num_cells=300, num_macros=2))

    def test_extraction_matches_fused(self, netlist):
        """Operator extraction is a pure optimisation: same numbers."""
        rng = np.random.default_rng(0)
        region = netlist.region
        x = rng.uniform(region.xl, region.xh, netlist.num_cells)
        y = rng.uniform(region.yl, region.yh, netlist.num_cells)
        fast = DensitySystem(netlist, 0.9, extraction=True,
                             rng=np.random.default_rng(1))
        slow = DensitySystem(netlist, 0.9, extraction=False,
                             rng=np.random.default_rng(1))
        a = fast.evaluate(x, y)
        b = slow.evaluate(x, y)
        assert a.overflow == pytest.approx(b.overflow, rel=1e-9)
        assert a.energy == pytest.approx(b.energy, rel=1e-6)
        np.testing.assert_allclose(a.grad_x, b.grad_x, atol=1e-9)
        np.testing.assert_allclose(a.total_map, b.total_map, atol=1e-9)

    def test_gradient_aligned_with_finite_difference_of_energy(self, netlist):
        """The gathered-field force is ePlace's physical force, not the
        exact gradient of the *discretised* energy, so per-cell values can
        deviate; but as a descent direction it must align with the true
        finite-difference gradient (and carry the 2x self-adjoint factor:
        N = Σ qψ counts each interaction twice)."""
        rng = np.random.default_rng(1)
        region = netlist.region
        x = rng.uniform(region.xl + 5, region.xh - 5, netlist.num_cells)
        y = rng.uniform(region.yl + 5, region.yh - 5, netlist.num_cells)
        system = DensitySystem(netlist, 0.9, use_fillers=False)
        result = system.evaluate(x, y)
        eps = 1e-3
        probe = netlist.movable_index[:12]
        fd = np.empty(len(probe))
        for k, i in enumerate(probe):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            fd[k] = (
                system.evaluate(xp, y).energy - system.evaluate(xm, y).energy
            ) / (2 * eps)
        analytic = 2.0 * result.grad_x[probe]
        cosine = np.dot(fd, analytic) / (
            np.linalg.norm(fd) * np.linalg.norm(analytic)
        )
        assert cosine > 0.9
        # Magnitudes agree to within a factor ~2 on aggregate.
        assert np.linalg.norm(analytic) == pytest.approx(
            np.linalg.norm(fd), rel=0.5
        )

    def test_fixed_cells_have_zero_gradient(self, netlist):
        rng = np.random.default_rng(2)
        region = netlist.region
        x = rng.uniform(region.xl, region.xh, netlist.num_cells)
        y = rng.uniform(region.yl, region.yh, netlist.num_cells)
        result = DensitySystem(netlist, 0.9).evaluate(x, y)
        fixed = ~netlist.movable
        assert np.all(result.grad_x[fixed] == 0)
        assert np.all(result.grad_y[fixed] == 0)

    def test_invalid_target_density(self, netlist):
        with pytest.raises(ValueError):
            DensitySystem(netlist, target_density=0.0)
        with pytest.raises(ValueError):
            DensitySystem(netlist, target_density=1.5)

    def test_density_map_only_matches_evaluate(self, netlist):
        rng = np.random.default_rng(3)
        region = netlist.region
        x = rng.uniform(region.xl, region.xh, netlist.num_cells)
        y = rng.uniform(region.yl, region.yh, netlist.num_cells)
        system = DensitySystem(netlist, 0.9)
        np.testing.assert_allclose(
            system.density_map_only(x, y), system.evaluate(x, y).density_map
        )
