"""Population-based exploration: perturbation model, policy, controller.

The integration tests run real (small) GP cohorts — they pin down the
three properties the exploration layer is built on:

* determinism — a fixed cohort seed reproduces the full trajectory
  bit-for-bit, including fork points and culls;
* elitism — the slot-0 lineage replays the single-run baseline exactly,
  so the cohort can never end worse than it;
* cross-process forking — a fork materialized from a spilled npz inside
  a worker process continues bit-for-bit identical to an uninterrupted
  run with the larger iteration budget.
"""

import dataclasses
import json
import os

import pytest

from repro.explore import (
    ExploreConfig,
    ExploreReport,
    MemberScore,
    Perturbation,
    PopulationController,
    draw_perturbation,
    rank_members,
    select_survivors,
)
from repro.explore.controller import PIPELINE_FACTORY, segment_schedule
from repro.explore.perturb import (
    DEFAULT_JITTER_RANGE,
    DEFAULT_LAMBDA_RANGE,
    IDENTITY,
)
from repro.explore.policy import assign_parents
from repro.recovery.fork import ForkSpec
from repro.runtime import (
    PlacementJob,
    ResultCache,
    WorkerPool,
    execute_job,
    job_checkpoint_dir,
)

#: Small enough to keep the suite fast, large enough that GP does not
#: converge inside 40 iterations (segment boundaries must be reachable).
BASE_SPEC = dict(
    design="fft_1",
    cells=200,
    seed=3,
    params={"max_iterations": 40, "min_iterations": 10},
    pipeline=PIPELINE_FACTORY,
)


def make_base(**overrides):
    spec = dict(BASE_SPEC)
    spec.update(overrides)
    return PlacementJob(**spec)


def run_cohort(tmp_path, name, cache=None, **cfg_overrides):
    cfg_kwargs = dict(population=3, rounds=2, survivors=2, seed=3)
    cfg_kwargs.update(cfg_overrides)
    config = ExploreConfig(**cfg_kwargs)
    controller = PopulationController(
        make_base(), config, cache=cache, workdir=str(tmp_path / name)
    )
    return controller.run()


# ---------------------------------------------------------------------
# units: segment schedule
# ---------------------------------------------------------------------

class TestSegmentSchedule:
    def test_even_split_ends_at_budget(self):
        assert segment_schedule(40, 3) == [13, 26, 40]

    def test_single_round_is_whole_budget(self):
        assert segment_schedule(40, 1) == [40]

    def test_fixed_segment_length(self):
        assert segment_schedule(40, 3, segment_iters=15) == [15, 30, 40]

    def test_strictly_increasing_when_budget_is_tight(self):
        ends = segment_schedule(5, 10)
        assert ends == sorted(set(ends))
        assert ends[-1] == 5

    def test_validation(self):
        with pytest.raises(ValueError, match="rounds"):
            segment_schedule(40, 0)
        with pytest.raises(ValueError, match="segment_iters"):
            segment_schedule(40, 2, segment_iters=0)


class TestExploreConfig:
    def test_defaults_valid(self):
        cfg = ExploreConfig()
        assert cfg.population == 4 and cfg.survivors == 2

    @pytest.mark.parametrize("bad", [
        dict(population=0),
        dict(survivors=0),
        dict(survivors=5, population=4),
        dict(rounds=0),
        dict(budget_core_seconds=0.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ExploreConfig(**bad)

    def test_to_dict_json_clean(self):
        data = ExploreConfig(seed=9).to_dict()
        assert json.loads(json.dumps(data)) == data


# ---------------------------------------------------------------------
# units: perturbation model
# ---------------------------------------------------------------------

class TestPerturb:
    def test_draw_is_deterministic(self):
        assert draw_perturbation(7, 2, 3) == draw_perturbation(7, 2, 3)

    def test_distinct_coordinates_draw_distinct_values(self):
        base = draw_perturbation(7, 2, 3)
        assert draw_perturbation(7, 2, 4) != base
        assert draw_perturbation(7, 3, 3) != base
        assert draw_perturbation(8, 2, 3) != base

    def test_draw_respects_ranges(self):
        for slot in range(16):
            p = draw_perturbation(1, 1, slot)
            assert DEFAULT_JITTER_RANGE[0] <= p.jitter <= DEFAULT_JITTER_RANGE[1]
            assert DEFAULT_LAMBDA_RANGE[0] <= p.lambda_scale <= DEFAULT_LAMBDA_RANGE[1]
            assert p.fresh_momentum

    def test_identity_maps_to_identity_fork(self):
        spec = ForkSpec(parent="ab" * 20, iteration=9, seed=IDENTITY.seed,
                        jitter=IDENTITY.jitter,
                        lambda_scale=IDENTITY.lambda_scale,
                        fresh_momentum=IDENTITY.fresh_momentum)
        assert spec.is_identity

    def test_to_dict_round_trip_types(self):
        data = Perturbation(seed=5, jitter=1.25, lambda_scale=0.5).to_dict()
        assert data == {"seed": 5, "jitter": 1.25, "lambda_scale": 0.5,
                        "fresh_momentum": True}


# ---------------------------------------------------------------------
# units: ranking / selection policy
# ---------------------------------------------------------------------

class TestPolicy:
    def test_rank_orders_on_hpwl_then_overflow_then_slot(self):
        scores = [
            MemberScore(slot=2, hpwl=10.0, overflow=0.5),
            MemberScore(slot=1, hpwl=10.0, overflow=0.2),
            MemberScore(slot=0, hpwl=12.0, overflow=0.1),
            MemberScore(slot=3, hpwl=10.0, overflow=0.2),
        ]
        assert [s.slot for s in rank_members(scores)] == [1, 3, 2, 0]

    def test_elite_always_survives(self):
        ranked = rank_members([
            MemberScore(slot=0, hpwl=30.0, overflow=0.9),   # worst
            MemberScore(slot=1, hpwl=10.0, overflow=0.1),
            MemberScore(slot=2, hpwl=20.0, overflow=0.1),
        ])
        survivors, culled = select_survivors(ranked, 2, elite_slot=0)
        assert 0 in survivors
        assert survivors == [1, 0] and culled == [2]

    def test_selection_without_elite_in_field(self):
        ranked = rank_members([
            MemberScore(slot=4, hpwl=1.0, overflow=0.0),
            MemberScore(slot=5, hpwl=2.0, overflow=0.0),
        ])
        survivors, culled = select_survivors(ranked, 1, elite_slot=0)
        assert survivors == [4] and culled == [5]

    def test_assign_parents_round_robin_by_rank(self):
        pairs = assign_parents([1, 0], [2, 3, 4])
        assert pairs == [(2, 1), (3, 0), (4, 1)]

    def test_assign_parents_needs_survivors(self):
        with pytest.raises(ValueError, match="survivors"):
            assign_parents([], [1])

    def test_select_survivors_validation(self):
        with pytest.raises(ValueError, match="survivors"):
            select_survivors([], 0)


# ---------------------------------------------------------------------
# units: report
# ---------------------------------------------------------------------

class TestExploreReport:
    def make_report(self):
        return ExploreReport(
            design="fft_1",
            config={"population": 2},
            rounds=[{"round": 0, "segment_end": 10,
                     "scores": [{"slot": 0, "hpwl": 5.0, "overflow": 0.3}],
                     "culled": [], "forks": [],
                     "core_seconds": 1.25, "wall_seconds": 0.7,
                     "respill_seconds": 0.1, "cached": 1}],
            best_slot=0, best_hpwl=5.0, best_job_id="j0",
            total_core_seconds=1.25, forks=1, culls=1,
        )

    def test_json_round_trip(self):
        report = self.make_report()
        back = ExploreReport.from_json(report.to_json())
        assert back == report

    def test_schema_mismatch_rejected(self):
        data = self.make_report().to_dict()
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            ExploreReport.from_dict(data)

    def test_trajectory_strips_measurements(self):
        trace = self.make_report().trajectory()
        assert len(trace) == 1
        for key in ("core_seconds", "wall_seconds", "respill_seconds",
                    "cached"):
            assert key not in trace[0]
        assert trace[0]["scores"][0]["hpwl"] == 5.0

    def test_summary_mentions_winner(self):
        text = self.make_report().summary()
        assert "winner: slot 0" in text and "fft_1" in text


# ---------------------------------------------------------------------
# integration: real GP cohorts
# ---------------------------------------------------------------------

def elite_final_hpwl(report):
    """Slot 0's HPWL at the last round it was scored in."""
    final = None
    for rnd in report.rounds:
        for score in rnd["scores"]:
            if score["slot"] == 0:
                final = score["hpwl"]
    assert final is not None
    return final


@pytest.fixture(scope="module")
def cohort_report(tmp_path_factory):
    """One shared cohort run — several tests assert on it."""
    return run_cohort(tmp_path_factory.mktemp("explore"), "shared")


class TestPopulationController:
    def test_cohort_completes_with_forks_and_culls(self, cohort_report):
        report = cohort_report
        assert len(report.rounds) == 2
        assert report.best_hpwl is not None and report.best_hpwl > 0
        assert report.best_slot is not None
        assert report.forks >= 1 and report.culls >= 1
        # Every round's score list is already in rank order.
        for rnd in report.rounds:
            ranked = rank_members([MemberScore(**s) for s in rnd["scores"]])
            assert [s["slot"] for s in rnd["scores"]] == \
                [m.slot for m in ranked]
            assert len(rnd["scores"]) <= 3
        # Lineage covers all slots, each entry names its segment job.
        assert set(report.lineage) == {"0", "1", "2"}
        for entries in report.lineage.values():
            assert all(e["job_id"] and e["hash"] for e in entries)
        # Perturbed-fork lineage entries carry their drawn perturbation
        # and their parent's checkpoint hash.
        perturbed = [e for entries in report.lineage.values()
                     for e in entries if e.get("perturbation")]
        assert len(perturbed) == report.forks
        assert all(e["parent_hash"] for e in perturbed)

    def test_fixed_seed_reproduces_cohort_bit_for_bit(self, cohort_report,
                                                      tmp_path):
        rerun = run_cohort(tmp_path, "rerun")
        assert rerun.trajectory() == cohort_report.trajectory()
        assert rerun.lineage == cohort_report.lineage
        assert rerun.best_hpwl == cohort_report.best_hpwl
        assert rerun.best_slot == cohort_report.best_slot

    def test_cohort_never_worse_than_single_run(self, cohort_report):
        """Elitism: slot 0 replays the baseline, so best ≤ baseline."""
        single = execute_job(make_base())
        assert single.ok
        assert elite_final_hpwl(cohort_report) == single.hpwl
        assert cohort_report.best_hpwl <= single.hpwl

    def test_process_mode_matches_inline(self, cohort_report, tmp_path):
        """Workers fork from spilled npz files; decisions are identical."""
        procs = run_cohort(tmp_path, "procs", workers=2)
        assert procs.trajectory() == cohort_report.trajectory()
        assert procs.lineage == cohort_report.lineage

    def test_cached_rerun_replays_decisions(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        first = run_cohort(tmp_path, "cold", cache=cache)
        second = run_cohort(tmp_path, "warm", cache=cache)
        assert second.trajectory() == first.trajectory()
        assert second.cached_core_seconds > 0.0
        # The warm run's fresh compute is only spill regeneration.
        assert second.total_core_seconds < first.total_core_seconds

    def test_budget_collapses_schedule(self, tmp_path):
        report = run_cohort(tmp_path, "budget", population=2, survivors=1,
                            rounds=3, budget_core_seconds=1e-6)
        assert report.budget_stopped
        # rounds=3 on a 40-iteration budget is [13, 26, 40]; the budget
        # trips after round 0 and the rest collapses to one final
        # segment.
        assert len(report.rounds) == 2
        assert report.rounds[-1]["segment_end"] == 40
        assert report.best_hpwl is not None

    def test_cohort_events_emitted(self, tmp_path):
        from repro.runtime import EventLog

        log = EventLog()
        config = ExploreConfig(population=2, rounds=2, survivors=1, seed=3)
        controller = PopulationController(
            make_base(), config, events=log,
            workdir=str(tmp_path / "events"),
        )
        controller.run()
        actions = [e.payload.get("action") for e in log.events
                   if e.kind == "explore"]
        assert "round" in actions and "done" in actions


class TestCrossProcessFork:
    """Satellite: forking across process boundaries (spilled npz)."""

    def test_worker_fork_from_spill_bit_identical(self, tmp_path):
        ckroot = str(tmp_path / "ck")
        parent = make_base(
            params={"max_iterations": 20, "min_iterations": 10},
            final_checkpoint=True,
        )
        [pres] = WorkerPool(max_workers=2, checkpoint_dir=ckroot).run([parent])
        assert pres.ok
        # The parent's boundary state was spilled to disk by the worker.
        spill_dir = job_checkpoint_dir(ckroot, parent)
        assert os.path.exists(os.path.join(spill_dir, "checkpoint.json"))

        # An identity fork resumed *inside another worker process* must
        # equal an uninterrupted 40-iteration run, bit for bit.
        fork = dataclasses.replace(
            parent,
            params=dataclasses.replace(parent.params, max_iterations=40),
            final_checkpoint=False,
            fork=ForkSpec(parent=parent.content_hash(), iteration=19,
                          seed=0).to_dict(),
        )
        [fres] = WorkerPool(max_workers=2, checkpoint_dir=ckroot).run([fork])
        assert fres.ok

        straight = execute_job(make_base())
        assert fres.hpwl == straight.hpwl
        assert fres.report.metrics["gp_iterations"] == \
            straight.report.metrics["gp_iterations"]

    def test_fork_job_hash_differs_from_parent(self):
        parent = make_base(final_checkpoint=True)
        child = dataclasses.replace(
            parent, final_checkpoint=False,
            fork=ForkSpec(parent=parent.content_hash(), iteration=19,
                          seed=1, jitter=1.0).to_dict(),
        )
        identity = dataclasses.replace(
            parent, final_checkpoint=False,
            fork=ForkSpec(parent=parent.content_hash(), iteration=19,
                          seed=0).to_dict(),
        )
        hashes = {parent.content_hash(), child.content_hash(),
                  identity.content_hash()}
        assert len(hashes) == 3


class TestCheckpointTelemetry:
    """Satellite: CheckpointManager ring/spill stats ride FlowReport."""

    def test_checkpoint_stats_surface_in_flow_report(self, tmp_path):
        job = make_base(
            params={"max_iterations": 12, "min_iterations": 5},
            final_checkpoint=True,
        )
        result = execute_job(job, checkpoint_dir=str(tmp_path))
        assert result.ok
        stats = result.report.metrics["gp_checkpoint_stats"]
        assert stats["saved"] >= 1
        assert stats["spills"] >= 1
        assert stats["spill_bytes"] > 0
        assert 0 <= stats["kept"] <= stats["keep"]

    def test_no_checkpoint_stats_without_recovery(self):
        result = execute_job(make_base())
        assert result.ok
        assert "gp_checkpoint_stats" not in result.report.metrics
