"""Deterministic fault injection: plans, specs, and the loop injector."""

import time

import pytest

from repro.analysis.sanitizer import NumericalFault
from repro.faults import (
    FAULT_KINDS,
    LOOP_KINDS,
    FaultCallback,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    loop_fault_callback,
)


class FakeRecord:
    def __init__(self, iteration):
        self.iteration = iteration


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor-strike")

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("nan-grad", iteration=-1)
        with pytest.raises(ValueError):
            FaultSpec("slow", seconds=-0.1)

    def test_applies_to_is_a_prefix_match(self):
        spec = FaultSpec("nan-grad", job_id="fft_1:s1")
        assert spec.applies_to("fft_1:s1:abc123")
        assert not spec.applies_to("fft_2:s1:abc123")
        assert FaultSpec("nan-grad").applies_to("anything")

    def test_dict_round_trip(self):
        spec = FaultSpec("crash", iteration=42, job_id="j", exitcode=99)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlan:
    def test_coerces_dict_entries(self):
        plan = FaultPlan(faults=[{"kind": "nan-grad", "iteration": 5}])
        assert isinstance(plan.faults[0], FaultSpec)
        assert len(plan) == 1

    def test_for_job_filters(self):
        plan = FaultPlan(faults=[
            FaultSpec("nan-grad", job_id="a"),
            FaultSpec("abort", job_id="b"),
            FaultSpec("slow"),
        ])
        kinds = [f.kind for f in plan.for_job("a:1")]
        assert kinds == ["nan-grad", "slow"]

    def test_loop_faults_excludes_cache_corruption(self):
        plan = FaultPlan(faults=[FaultSpec("corrupt-cache"),
                                 FaultSpec("nan-grad")])
        assert [f.kind for f in plan.loop_faults("x")] == ["nan-grad"]

    def test_json_round_trip(self):
        plan = FaultPlan(faults=[FaultSpec("slow", iteration=3, seconds=0.5)],
                         seed=7)
        again = FaultPlan.from_json(plan.to_json())
        assert again.seed == 7
        assert again.faults == plan.faults

    def test_sample_is_deterministic(self):
        a = FaultPlan.sample(seed=3, max_iteration=50, kinds=LOOP_KINDS,
                             count=4)
        b = FaultPlan.sample(seed=3, max_iteration=50, kinds=LOOP_KINDS,
                             count=4)
        assert a.faults == b.faults
        assert all(1 <= f.iteration < 50 for f in a.faults)
        assert FaultPlan.sample(seed=4, max_iteration=50, kinds=LOOP_KINDS,
                                count=4).faults != a.faults

    def test_sample_validates(self):
        with pytest.raises(ValueError):
            FaultPlan.sample(seed=0, max_iteration=1)

    def test_kind_tuples(self):
        assert set(LOOP_KINDS) < set(FAULT_KINDS)
        assert "corrupt-cache" in FAULT_KINDS


class TestFaultCallback:
    def test_nan_grad_raises_numerical_fault_once(self):
        cb = FaultCallback([FaultSpec("nan-grad", iteration=5)])
        cb.on_iteration(FakeRecord(4))  # not yet
        with pytest.raises(NumericalFault):
            cb.on_iteration(FakeRecord(5))
        cb.on_iteration(FakeRecord(5))  # replayed iteration: no re-fire
        assert len(cb.fired) == 1

    def test_abort_raises_injected_fault(self):
        cb = FaultCallback([FaultSpec("abort", iteration=2)])
        with pytest.raises(InjectedFault):
            cb.on_iteration(FakeRecord(2))
        # InjectedFault must NOT be self-healable.
        assert not issubclass(InjectedFault, NumericalFault)

    def test_crash_inline_raises(self):
        cb = FaultCallback([FaultSpec("crash", iteration=2)], hard_exit=False)
        with pytest.raises(InjectedFault, match="exitcode 173"):
            cb.on_iteration(FakeRecord(2))

    def test_crash_skipped_after_resume(self):
        cb = FaultCallback([FaultSpec("crash", iteration=2)], resumed=True)
        cb.on_iteration(FakeRecord(2))  # must not raise
        assert cb.fired == []

    def test_slow_sleeps(self):
        cb = FaultCallback([FaultSpec("slow", iteration=1, seconds=0.05)])
        start = time.perf_counter()
        cb.on_iteration(FakeRecord(1))
        assert time.perf_counter() - start >= 0.05
        assert len(cb.fired) == 1

    def test_multiple_specs_fire_independently(self):
        cb = FaultCallback([FaultSpec("slow", iteration=1),
                            FaultSpec("slow", iteration=3)])
        cb.on_iteration(FakeRecord(1))
        cb.on_iteration(FakeRecord(3))
        assert len(cb.fired) == 2


class TestLoopFaultCallback:
    def test_none_plan_is_none(self):
        assert loop_fault_callback(None, "j") is None

    def test_no_applicable_faults_is_none(self):
        plan = FaultPlan(faults=[FaultSpec("nan-grad", job_id="other")])
        assert loop_fault_callback(plan, "mine") is None

    def test_builds_callback_with_flags(self):
        plan = FaultPlan(faults=[FaultSpec("crash", iteration=9)])
        cb = loop_fault_callback(plan, "j", hard_exit=True, resumed=True)
        assert cb.hard_exit and cb.resumed
        assert [s.iteration for s in cb.specs] == [9]
