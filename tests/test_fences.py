"""Tests for fence regions: model, generator, GP projection, legalization,
detailed placement, legality checking."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams, XPlacer
from repro.core.fences import FenceProjector
from repro.detail import DetailedPlacer
from repro.legalize import FenceAwareLegalizer, TetrisLegalizer, check_legal
from repro.netlist import (
    FenceRegion,
    NetlistBuilder,
    PlacementRegion,
    validate_fences,
)


@pytest.fixture(scope="module")
def fenced_netlist():
    spec = CircuitSpec(
        "fenced", num_cells=400, num_macros=2, num_fences=2, utilization=0.5
    )
    return generate_circuit(spec)


@pytest.fixture(scope="module")
def fenced_gp(fenced_netlist):
    return XPlacer(fenced_netlist, PlacementParams(max_iterations=500)).run()


class TestFenceRegion:
    def test_contains(self):
        fence = FenceRegion("f", ((0, 0, 10, 10), (20, 0, 30, 10)))
        x = np.array([5.0, 15.0, 25.0])
        y = np.array([5.0, 5.0, 5.0])
        assert fence.contains(x, y).tolist() == [True, False, True]

    def test_contains_box_respects_extents(self):
        fence = FenceRegion("f", ((0, 0, 10, 10),))
        # Center inside but body sticking out.
        ok = fence.contains_box(
            np.array([9.5]), np.array([5.0]), np.array([1.0]), np.array([1.0])
        )
        assert not ok[0]

    def test_clamp_into_nearest_box(self):
        fence = FenceRegion("f", ((0, 0, 10, 10), (20, 0, 30, 10)))
        hw = np.array([1.0, 1.0])
        hh = np.array([1.0, 1.0])
        x, y = fence.clamp_into(np.array([12.0, 19.0]), np.array([5.0, 5.0]), hw, hh)
        assert x[0] == pytest.approx(9.0)   # nearest: left box edge
        assert x[1] == pytest.approx(21.0)  # nearest: right box edge

    def test_degenerate_box_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            FenceRegion("f", ((0, 0, 0, 10),))
        with pytest.raises(ValueError, match="no boxes"):
            FenceRegion("f", ())

    def test_area(self):
        fence = FenceRegion("f", ((0, 0, 10, 10), (20, 0, 30, 5)))
        assert fence.area == pytest.approx(150.0)

    def test_validate_rejects_cross_fence_overlap(self):
        a = FenceRegion("a", ((0, 0, 10, 10),))
        b = FenceRegion("b", ((5, 5, 15, 15),))
        with pytest.raises(ValueError, match="overlap"):
            validate_fences([a, b])
        c = FenceRegion("c", ((10, 0, 20, 10),))  # abutting is fine
        validate_fences([a, c])


class TestBuilderAndNetlist:
    def _fenced_builder(self):
        builder = NetlistBuilder()
        builder.set_region(PlacementRegion.with_uniform_rows(0, 0, 100, 100, 10))
        fence = builder.add_fence("f0", [(10, 10, 40, 40)])
        builder.add_cell("a", 4, 10, fence=fence)
        builder.add_cell("b", 4, 10)
        return builder

    def test_fence_assignment(self):
        nl = self._fenced_builder().build()
        assert nl.cell_fence.tolist() == [0, -1]
        assert len(nl.fences) == 1

    def test_assign_fence_after_add(self):
        builder = self._fenced_builder()
        builder.assign_fence("b", 0)
        nl = builder.build()
        assert nl.cell_fence.tolist() == [0, 0]

    def test_unknown_fence_rejected(self):
        builder = self._fenced_builder()
        with pytest.raises(ValueError, match="unknown fence"):
            builder.add_cell("c", 4, 10, fence=5)
        with pytest.raises(ValueError, match="unknown fence"):
            builder.assign_fence("a", 7)

    def test_fixed_cell_with_fence_rejected(self):
        builder = self._fenced_builder()
        builder.add_cell("t", 2, 2, movable=False, x=50.0, y=50.0)
        builder.assign_fence("t", 0)
        with pytest.raises(ValueError, match="fixed cells"):
            builder.build()


class TestGenerator:
    def test_fences_created_with_members(self, fenced_netlist):
        nl = fenced_netlist
        assert len(nl.fences) == 2
        members = np.sum(nl.cell_fence >= 0)
        assert members > 0
        # Roughly the configured fraction (capacity may clip it).
        assert members <= 0.2 * nl.num_movable + 10

    def test_fence_boxes_disjoint_from_macros(self, fenced_netlist):
        nl = fenced_netlist
        fixed = np.flatnonzero((~nl.movable) & (nl.cell_area > 0))
        for fence in nl.fences:
            for (xl, yl, xh, yh) in fence.boxes:
                for i in fixed:
                    mxl = nl.fixed_x[i] - nl.cell_w[i] / 2
                    mxh = nl.fixed_x[i] + nl.cell_w[i] / 2
                    myl = nl.fixed_y[i] - nl.cell_h[i] / 2
                    myh = nl.fixed_y[i] + nl.cell_h[i] / 2
                    overlap = min(xh, mxh) - max(xl, mxl) > 1e-9 and (
                        min(yh, myh) - max(yl, myl) > 1e-9
                    )
                    assert not overlap

    def test_fence_capacity_sufficient(self, fenced_netlist):
        nl = fenced_netlist
        for g, fence in enumerate(nl.fences):
            members = np.flatnonzero(nl.cell_fence == g)
            member_area = float(np.sum(nl.cell_area[members]))
            assert member_area < 0.9 * fence.area

    def test_no_fences_by_default(self):
        nl = generate_circuit(CircuitSpec("plain", num_cells=100))
        assert not nl.fences
        assert np.all(nl.cell_fence == -1)


class TestProjector:
    def test_members_projected_inside(self, fenced_netlist):
        nl = fenced_netlist
        projector = FenceProjector(nl)
        assert projector.active
        mov = nl.movable_index
        rng = np.random.default_rng(0)
        x = rng.uniform(nl.region.xl, nl.region.xh, len(mov))
        y = rng.uniform(nl.region.yl, nl.region.yh, len(mov))
        px, py = projector.project(x, y)
        hw = nl.cell_w[mov] / 2
        hh = nl.cell_h[mov] / 2
        for g, fence in enumerate(nl.fences):
            members = nl.cell_fence[mov] == g
            ok = fence.contains_box(px[members], py[members],
                                    hw[members], hh[members])
            assert ok.all()

    def test_free_cells_pushed_out(self, fenced_netlist):
        nl = fenced_netlist
        projector = FenceProjector(nl)
        mov = nl.movable_index
        free = nl.cell_fence[mov] < 0
        # Drop every free cell into the middle of fence 0.
        (xl, yl, xh, yh) = nl.fences[0].boxes[0]
        x = np.full(len(mov), (xl + xh) / 2)
        y = np.full(len(mov), (yl + yh) / 2)
        px, py = projector.project(x, y)
        hw = nl.cell_w[mov] / 2
        hh = nl.cell_h[mov] / 2
        overlapping = (
            (px[free] + hw[free] > xl)
            & (px[free] - hw[free] < xh)
            & (py[free] + hh[free] > yl)
            & (py[free] - hh[free] < yh)
        )
        assert not overlapping.any()

    def test_inactive_on_fence_free_design(self):
        nl = generate_circuit(CircuitSpec("nf", num_cells=50))
        projector = FenceProjector(nl)
        assert not projector.active
        x = np.zeros(nl.num_movable)
        out_x, __ = projector.project(x, x)
        assert out_x is x


class TestFencedPlacementFlow:
    def test_gp_respects_fences(self, fenced_netlist, fenced_gp):
        nl, gp = fenced_netlist, fenced_gp
        assert gp.converged
        mov = nl.movable_index
        hw = nl.cell_w[mov] / 2
        hh = nl.cell_h[mov] / 2
        for g, fence in enumerate(nl.fences):
            members = nl.cell_fence[mov] == g
            ok = fence.contains_box(
                gp.x[mov][members], gp.y[mov][members], hw[members], hh[members]
            )
            assert ok.all()

    @pytest.mark.parametrize("base", [None, TetrisLegalizer])
    def test_fence_aware_legalization(self, fenced_netlist, fenced_gp, base):
        nl, gp = fenced_netlist, fenced_gp
        kwargs = {} if base is None else {"base_cls": base}
        lx, ly = FenceAwareLegalizer(nl, **kwargs).legalize(gp.x, gp.y)
        report = check_legal(nl, lx, ly)
        assert report.legal, report.summary()

    def test_detailed_placement_respects_fences(self, fenced_netlist, fenced_gp):
        nl, gp = fenced_netlist, fenced_gp
        lx, ly = FenceAwareLegalizer(nl).legalize(gp.x, gp.y)
        result = DetailedPlacer(nl, max_passes=1).place(lx, ly)
        report = check_legal(nl, result.x, result.y)
        assert report.legal, report.summary()
        assert result.hpwl_after <= result.hpwl_before + 1e-9

    def test_check_legal_flags_fence_violation(self, fenced_netlist, fenced_gp):
        nl, gp = fenced_netlist, fenced_gp
        lx, ly = FenceAwareLegalizer(nl).legalize(gp.x, gp.y)
        mov = nl.movable_index
        member = mov[nl.cell_fence[mov] == 0][0]
        bad_x = lx.copy()
        bad_x[member] = nl.region.xl + nl.cell_w[member]  # far from fence 0
        report = check_legal(nl, bad_x, ly)
        assert member in report.fence_violations

    def test_plain_legalizer_via_fence_aware_on_fence_free(self):
        nl = generate_circuit(CircuitSpec("nf2", num_cells=150))
        gp = XPlacer(nl, PlacementParams(max_iterations=300)).run()
        lx, ly = FenceAwareLegalizer(nl).legalize(gp.x, gp.y)
        assert check_legal(nl, lx, ly).legal
