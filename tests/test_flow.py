"""Integration tests for the end-to-end flow harness."""

import numpy as np
import pytest

from repro import PlacementParams, make_design, run_flow
from repro.flow import FlowResult


@pytest.fixture(scope="module")
def netlist():
    return make_design("fft_1", num_cells=400)


class TestRunFlow:
    @pytest.fixture(scope="class")
    def xplace_flow(self, netlist):
        return run_flow(netlist, placer="xplace", dp_passes=1)

    def test_stages_consistent(self, xplace_flow):
        r = xplace_flow
        assert r.legal
        # DP starts from LG and cannot be worse.
        assert r.dp_hpwl <= r.lg_hpwl + 1e-9
        # Legalization perturbs GP but stays in the same ballpark.
        assert r.lg_hpwl < 1.5 * r.gp_hpwl
        assert r.final_hpwl == r.dp_hpwl

    def test_timers_positive(self, xplace_flow):
        assert xplace_flow.gp_seconds > 0
        assert xplace_flow.dp_seconds > 0
        assert xplace_flow.gp_iterations > 0

    def test_routing_option(self, netlist):
        r = run_flow(netlist, placer="xplace", dp_passes=0, route=True,
                     route_grid_m=16)
        assert r.top5_overflow is not None
        assert r.gr_seconds is not None

    def test_no_routing_by_default(self, xplace_flow):
        assert xplace_flow.top5_overflow is None

    def test_baseline_flow(self, netlist, xplace_flow):
        r = run_flow(netlist, placer="baseline", dp_passes=1)
        assert r.legal
        assert r.final_hpwl == pytest.approx(xplace_flow.final_hpwl, rel=0.06)

    def test_nn_flow_requires_predictor(self, netlist):
        with pytest.raises(ValueError, match="field_predictor"):
            run_flow(netlist, placer="xplace-nn")

    def test_nn_flow_with_fake_predictor(self, netlist):
        def predictor(density_map):
            return np.zeros_like(density_map), np.zeros_like(density_map)

        r = run_flow(netlist, placer="xplace-nn", field_predictor=predictor,
                     dp_passes=0)
        assert r.legal

    def test_unknown_placer(self, netlist):
        with pytest.raises(ValueError, match="unknown placer"):
            run_flow(netlist, placer="simulated-annealing")

    def test_custom_params_respected(self, netlist):
        params = PlacementParams(max_iterations=30, min_iterations=30,
                                 stop_overflow=1e-12)
        r = run_flow(netlist, params=params, dp_passes=0)
        assert r.gp_iterations == 30


class TestFlowDeterminism:
    """Same seed ⇒ byte-identical flow: the result cache's correctness
    precondition (repro.runtime keys cached placements by params+seed)."""

    def test_same_seed_identical(self, netlist):
        params = PlacementParams(max_iterations=40, min_iterations=20,
                                 seed=3)
        first = run_flow(netlist, params=params, dp_passes=1)
        second = run_flow(netlist, params=params, dp_passes=1)
        assert np.array_equal(first.x, second.x)
        assert np.array_equal(first.y, second.y)
        assert first.gp_hpwl == second.gp_hpwl
        assert first.lg_hpwl == second.lg_hpwl
        assert first.dp_hpwl == second.dp_hpwl
        assert first.gp_iterations == second.gp_iterations

    def test_different_seed_differs(self, netlist):
        base = dict(max_iterations=40, min_iterations=20)
        first = run_flow(netlist, params=PlacementParams(seed=3, **base),
                         dp_passes=0)
        second = run_flow(netlist, params=PlacementParams(seed=4, **base),
                          dp_passes=0)
        assert not np.array_equal(first.x, second.x)
