"""Tests for row space, Tetris and Abacus legalizers, legality checker."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams, XPlacer
from repro.legalize import (
    AbacusLegalizer,
    TetrisLegalizer,
    build_row_space,
    check_legal,
)
from repro.netlist import NetlistBuilder, PlacementRegion
from repro.wirelength import hpwl


@pytest.fixture(scope="module")
def placed():
    nl = generate_circuit(
        CircuitSpec("lg", num_cells=350, num_macros=2, num_pads=16)
    )
    result = XPlacer(nl, PlacementParams(max_iterations=400)).run()
    return nl, result


class TestRowSpace:
    def test_rows_without_macros_one_segment(self):
        nl = generate_circuit(
            CircuitSpec("rs", num_cells=50, num_macros=0, macro_fraction=0.0)
        )
        space = build_row_space(nl)
        assert all(len(segs) == 1 for segs in space.segments)

    def test_macros_split_rows(self, placed):
        nl, __ = placed
        space = build_row_space(nl)
        assert any(len(segs) > 1 for segs in space.segments)

    def test_free_width_excludes_blockage(self, placed):
        nl, __ = placed
        space = build_row_space(nl)
        total_row_width = sum(r.xh - r.xl for r in space.rows)
        macro_area = float(
            np.sum(nl.cell_area[(~nl.movable) & (nl.cell_area > 0)])
        )
        free = space.total_free_width() * nl.region.row_height
        assert free < total_row_width * nl.region.row_height
        # Free area ≈ die area − macro area (slivers make it slightly less).
        assert free <= nl.region.area - macro_area + 1e-6

    def test_requires_rows(self):
        builder = NetlistBuilder()
        builder.set_region(PlacementRegion(0, 0, 10, 10))
        builder.add_cell("a", 1, 1)
        nl = builder.build()
        with pytest.raises(ValueError, match="no rows"):
            build_row_space(nl)


@pytest.mark.parametrize("legalizer_cls", [TetrisLegalizer, AbacusLegalizer])
class TestLegalizers:
    def test_produces_legal_placement(self, placed, legalizer_cls):
        nl, result = placed
        lx, ly = legalizer_cls(nl).legalize(result.x, result.y)
        report = check_legal(nl, lx, ly)
        assert report.legal, report.summary()

    def test_fixed_cells_untouched(self, placed, legalizer_cls):
        nl, result = placed
        lx, ly = legalizer_cls(nl).legalize(result.x, result.y)
        fixed = ~nl.movable
        np.testing.assert_array_equal(lx[fixed], result.x[fixed])
        np.testing.assert_array_equal(ly[fixed], result.y[fixed])

    def test_small_displacement(self, placed, legalizer_cls):
        nl, result = placed
        lx, ly = legalizer_cls(nl).legalize(result.x, result.y)
        mov = nl.movable_index
        disp = np.abs(lx[mov] - result.x[mov]) + np.abs(ly[mov] - result.y[mov])
        avg_cell = float(np.mean(nl.cell_w[mov]))
        assert np.mean(disp) < 10 * avg_cell

    def test_hpwl_close_to_gp(self, placed, legalizer_cls):
        nl, result = placed
        lx, ly = legalizer_cls(nl).legalize(result.x, result.y)
        assert hpwl(nl, lx, ly) < 1.3 * result.hpwl


class TestAbacusVsTetris:
    def test_abacus_no_worse_displacement(self, placed):
        nl, result = placed
        tx, ty = TetrisLegalizer(nl).legalize(result.x, result.y)
        ax, ay = AbacusLegalizer(nl).legalize(result.x, result.y)
        mov = nl.movable_index
        disp_t = np.mean(
            np.abs(tx[mov] - result.x[mov]) + np.abs(ty[mov] - result.y[mov])
        )
        disp_a = np.mean(
            np.abs(ax[mov] - result.x[mov]) + np.abs(ay[mov] - result.y[mov])
        )
        assert disp_a <= disp_t * 1.05


class TestCheckLegal:
    def _tiny(self):
        builder = NetlistBuilder()
        builder.set_region(
            PlacementRegion.with_uniform_rows(0, 0, 100, 40, 10)
        )
        builder.add_cell("a", 4, 10)
        builder.add_cell("b", 6, 10)
        return builder.build()

    def test_legal_case(self):
        nl = self._tiny()
        x = np.array([2.0, 10.0])
        y = np.array([5.0, 5.0])
        assert check_legal(nl, x, y).legal

    def test_detects_overlap(self):
        nl = self._tiny()
        x = np.array([2.0, 4.0])
        y = np.array([5.0, 5.0])
        report = check_legal(nl, x, y)
        assert not report.legal
        assert report.overlaps

    def test_detects_off_row(self):
        nl = self._tiny()
        x = np.array([2.0, 10.0])
        y = np.array([7.5, 5.0])
        report = check_legal(nl, x, y)
        assert report.off_row

    def test_detects_out_of_die(self):
        nl = self._tiny()
        x = np.array([-5.0, 10.0])
        y = np.array([5.0, 5.0])
        report = check_legal(nl, x, y)
        assert report.out_of_die

    def test_detects_macro_overlap(self):
        builder = NetlistBuilder()
        builder.set_region(PlacementRegion.with_uniform_rows(0, 0, 100, 40, 10))
        builder.add_cell("a", 4, 10)
        builder.add_cell("blk", 20, 20, movable=False, x=50.0, y=10.0)
        nl = builder.build()
        x = np.array([45.0, 50.0])
        y = np.array([5.0, 10.0])
        report = check_legal(nl, x, y)
        assert report.macro_overlaps
