"""Tests for mixed-size placement: movable macros through the full flow."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams, XPlacer
from repro.flow_mixed import (
    MixedSizeResult,
    freeze_cells,
    movable_macro_indices,
    run_mixed_size_flow,
)
from repro.legalize import check_legal
from repro.legalize.macros import MacroLegalizer


@pytest.fixture(scope="module")
def mixed():
    return generate_circuit(
        CircuitSpec(
            "mixed",
            num_cells=300,
            num_macros=1,
            num_movable_macros=4,
            movable_macro_fraction=0.15,
            utilization=0.5,
        )
    )


class TestGenerator:
    def test_movable_macros_created(self, mixed):
        macros = movable_macro_indices(mixed)
        assert len(macros) == 4
        assert np.all(mixed.movable[macros])
        row = mixed.region.row_height
        assert np.all(mixed.cell_h[macros] >= 2 * row)

    def test_macros_connected(self, mixed):
        macros = movable_macro_indices(mixed)
        nets_touching = mixed.cell_num_nets[macros]
        assert nets_touching.sum() > 0

    def test_area_fraction_respected(self, mixed):
        macros = movable_macro_indices(mixed)
        macro_area = float(np.sum(mixed.cell_area[macros]))
        total = mixed.movable_area
        assert 0.05 < macro_area / total < 0.3

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            CircuitSpec("x", num_cells=100, num_movable_macros=-1)
        with pytest.raises(ValueError):
            CircuitSpec("x", num_cells=100, movable_macro_fraction=0.9)


class TestFreezeCells:
    def test_freeze_changes_mobility_only(self, mixed):
        macros = movable_macro_indices(mixed)
        rng = np.random.default_rng(0)
        region = mixed.region
        x = rng.uniform(region.xl + 20, region.xh - 20, mixed.num_cells)
        y = rng.uniform(region.yl + 20, region.yh - 20, mixed.num_cells)
        frozen = freeze_cells(mixed, macros, x, y)
        assert frozen.num_movable == mixed.num_movable - len(macros)
        np.testing.assert_allclose(frozen.fixed_x[macros], x[macros])
        assert frozen.num_nets == mixed.num_nets
        assert not np.any(frozen.movable[macros])


class TestMacroLegalizer:
    def test_deoverlaps_and_aligns(self, mixed):
        macros = movable_macro_indices(mixed)
        gp = XPlacer(mixed, PlacementParams(max_iterations=300)).run()
        lx, ly = MacroLegalizer(mixed).legalize(gp.x, gp.y, macros)
        region = mixed.region
        row = region.row_height
        boxes = []
        for m in macros:
            w, h = mixed.cell_w[m], mixed.cell_h[m]
            # Inside die.
            assert lx[m] - w / 2 >= region.xl - 1e-6
            assert lx[m] + w / 2 <= region.xh + 1e-6
            # Row-aligned bottom edge.
            frac = (ly[m] - h / 2 - region.yl) / row
            assert abs(frac - round(frac)) < 1e-6
            boxes.append((lx[m] - w / 2, ly[m] - h / 2, lx[m] + w / 2, ly[m] + h / 2))
        # Pairwise disjoint.
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                a, b = boxes[i], boxes[j]
                ox = min(a[2], b[2]) - max(a[0], b[0])
                oy = min(a[3], b[3]) - max(a[1], b[1])
                assert min(ox, oy) <= 1e-9

    def test_nonmacro_positions_untouched(self, mixed):
        macros = movable_macro_indices(mixed)
        gp = XPlacer(mixed, PlacementParams(max_iterations=200)).run()
        lx, ly = MacroLegalizer(mixed).legalize(gp.x, gp.y, macros)
        others = np.setdiff1d(np.arange(mixed.num_cells), macros)
        np.testing.assert_array_equal(lx[others], gp.x[others])


class TestMixedFlow:
    @pytest.fixture(scope="class")
    def result(self, mixed) -> MixedSizeResult:
        return run_mixed_size_flow(
            mixed, PlacementParams(max_iterations=500), dp_passes=1
        )

    def test_flow_legal(self, mixed, result):
        assert result.legal
        assert result.num_macros == 4

    def test_macros_stay_where_legalized(self, mixed, result):
        """After freezing, the finish stages must not move macros."""
        macros = movable_macro_indices(mixed)
        frozen = freeze_cells(mixed, macros, result.x, result.y)
        report = check_legal(frozen, result.x, result.y)
        assert report.legal, report.summary()

    def test_quality_sane(self, mixed, result):
        rng = np.random.default_rng(1)
        region = mixed.region
        x = result.x.copy()
        y = result.y.copy()
        mov = mixed.movable_index
        x[mov] = rng.uniform(region.xl, region.xh, len(mov))
        y[mov] = rng.uniform(region.yl, region.yh, len(mov))
        from repro.wirelength import hpwl

        assert result.hpwl < hpwl(mixed, x, y)

    def test_displacement_reported(self, result):
        assert result.macro_displacement >= 0
        assert result.mgp_seconds > 0
        assert result.finish_seconds > 0

    def test_flow_without_macros_degrades_gracefully(self):
        plain = generate_circuit(CircuitSpec("plainmm", num_cells=150))
        result = run_mixed_size_flow(
            plain, PlacementParams(max_iterations=200), dp_passes=0
        )
        assert result.num_macros == 0
        assert result.legal
