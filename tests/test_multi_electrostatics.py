"""Tests for the multi-electrostatics fence density system."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams, XPlacer
from repro.density.multi import MultiRegionDensitySystem
from repro.legalize import FenceAwareLegalizer, check_legal


@pytest.fixture(scope="module")
def fenced():
    return generate_circuit(
        CircuitSpec("me", num_cells=400, num_macros=2, num_fences=2,
                    utilization=0.5)
    )


class TestMultiRegionSystem:
    @pytest.fixture(scope="class")
    def system(self, fenced):
        return MultiRegionDensitySystem(
            fenced, 0.9, rng=np.random.default_rng(0)
        )

    def test_requires_fences(self):
        plain = generate_circuit(CircuitSpec("nf", num_cells=100))
        with pytest.raises(ValueError, match="needs fence regions"):
            MultiRegionDensitySystem(plain, 0.9)

    def test_group_partition(self, fenced, system):
        # default group + one per fence, covering all movable cells once.
        assert len(system.groups) == len(fenced.fences) + 1
        total = sum(len(g.members) for g in system.groups)
        assert total == fenced.num_movable

    def test_obstruction_maps(self, fenced, system):
        for group in system.groups:
            # Obstruction equals target density outside the allowed area.
            outside = ~group.allowed
            assert np.all(group.obstruction[outside]
                          == system.target_density)

    def test_evaluate_shapes(self, fenced, system):
        rng = np.random.default_rng(1)
        region = fenced.region
        x = rng.uniform(region.xl, region.xh, fenced.num_cells)
        y = rng.uniform(region.yl, region.yh, fenced.num_cells)
        result = system.evaluate(x, y)
        assert result.grad_x.shape == (fenced.num_cells,)
        assert result.filler_grad_x.shape == (system.fillers.count,)
        assert np.isfinite(result.energy)
        assert result.overflow >= 0

    def test_field_pushes_members_toward_their_fence(self, fenced, system):
        """A member far outside its fence must feel a net force whose
        descent direction points toward the fence."""
        region = fenced.region
        x = np.where(np.isnan(fenced.fixed_x), 0.0, fenced.fixed_x).copy()
        y = np.where(np.isnan(fenced.fixed_y), 0.0, fenced.fixed_y).copy()
        mov = fenced.movable_index
        rng = np.random.default_rng(2)
        x[mov] = rng.uniform(region.xl, region.xh, len(mov))
        y[mov] = rng.uniform(region.yl, region.yh, len(mov))
        # Pick a fence-0 member and plant it far from the fence box.
        member = mov[fenced.cell_fence[mov] == 0][0]
        (bxl, byl, bxh, byh) = fenced.fences[0].boxes[0]
        box_cx, box_cy = (bxl + bxh) / 2, (byl + byh) / 2
        # Far corner of the die.
        far_x = region.xl + 2.0 if box_cx > region.center[0] else region.xh - 2.0
        far_y = region.yl + 2.0 if box_cy > region.center[1] else region.yh - 2.0
        x[member], y[member] = far_x, far_y
        result = system.evaluate(x, y)
        step_x = -result.grad_x[member]
        step_y = -result.grad_y[member]
        toward = np.array([box_cx - far_x, box_cy - far_y])
        step = np.array([step_x, step_y])
        cosine = np.dot(step, toward) / (
            np.linalg.norm(step) * np.linalg.norm(toward) + 1e-30
        )
        assert cosine > 0.3

    def test_density_map_only_is_global(self, fenced, system):
        rng = np.random.default_rng(3)
        region = fenced.region
        x = rng.uniform(region.xl, region.xh, fenced.num_cells)
        y = rng.uniform(region.yl, region.yh, fenced.num_cells)
        density = system.density_map_only(x, y)
        assert density.shape == system.grid.shape


class TestMultiModeFlow:
    def test_placer_converges_and_legalizes(self, fenced):
        params = PlacementParams(fence_mode="multi", max_iterations=600)
        result = XPlacer(fenced, params).run()
        assert result.overflow < 0.12
        lx, ly = FenceAwareLegalizer(fenced).legalize(result.x, result.y)
        report = check_legal(fenced, lx, ly)
        assert report.legal, report.summary()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="fence_mode"):
            PlacementParams(fence_mode="teleport")

    def test_multi_mode_on_fence_free_design_falls_back(self):
        plain = generate_circuit(CircuitSpec("nf2", num_cells=150))
        params = PlacementParams(fence_mode="multi", max_iterations=200)
        placer = XPlacer(plain, params)
        from repro.density import DensitySystem

        assert isinstance(placer.density, DensitySystem)
