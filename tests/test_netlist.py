"""Unit tests for the CSR netlist container and builder."""

import numpy as np
import pytest

from repro.netlist import Netlist, NetlistBuilder, PlacementRegion, Row, compute_stats


def tiny_builder():
    builder = NetlistBuilder("tiny")
    builder.set_region(PlacementRegion.with_uniform_rows(0, 0, 100, 100, 10))
    builder.add_cell("a", 4, 10)
    builder.add_cell("b", 6, 10)
    builder.add_cell("pad", 0, 0, movable=False, x=0.0, y=0.0)
    builder.add_net("n1", [("a", 1.0, 0.0), ("b", -1.0, 0.0)])
    builder.add_net("n2", [("a", 0.0, 2.0), ("b", 0.0, -2.0), ("pad", 0.0, 0.0)])
    return builder


class TestBuilder:
    def test_build_shapes(self):
        nl = tiny_builder().build()
        assert nl.num_cells == 3
        assert nl.num_nets == 2
        assert nl.num_pins == 5
        assert nl.net_start.tolist() == [0, 2, 5]
        assert nl.net_degree.tolist() == [2, 3]

    def test_duplicate_cell_rejected(self):
        builder = tiny_builder()
        with pytest.raises(ValueError, match="duplicate cell"):
            builder.add_cell("a", 1, 1)

    def test_duplicate_net_rejected(self):
        builder = tiny_builder()
        with pytest.raises(ValueError, match="duplicate net"):
            builder.add_net("n1", [("a", 0, 0), ("b", 0, 0)])

    def test_unknown_cell_in_net(self):
        builder = tiny_builder()
        with pytest.raises(KeyError):
            builder.add_net("n3", [("missing", 0, 0)])

    def test_fixed_cell_needs_position(self):
        builder = tiny_builder()
        with pytest.raises(ValueError, match="needs a position"):
            builder.add_cell("t", 1, 1, movable=False)

    def test_region_required(self):
        builder = NetlistBuilder()
        builder.add_cell("a", 1, 1)
        with pytest.raises(ValueError, match="set_region"):
            builder.build()

    def test_net_by_index_reference(self):
        builder = tiny_builder()
        builder.add_net("n3", [(0, 0.0, 0.0), (1, 0.0, 0.0)])
        nl = builder.build()
        assert nl.num_nets == 3

    def test_negative_cell_size_rejected(self):
        builder = tiny_builder()
        with pytest.raises(ValueError, match="negative size"):
            builder.add_cell("bad", -1, 2)


class TestNetlist:
    def test_pin_positions(self):
        nl = tiny_builder().build()
        x = np.array([10.0, 20.0, 0.0])
        y = np.array([5.0, 5.0, 0.0])
        px, py = nl.pin_positions(x, y)
        assert px.tolist() == [11.0, 19.0, 10.0, 20.0, 0.0]
        assert py.tolist() == [5.0, 5.0, 7.0, 3.0, 0.0]

    def test_cell_pin_csr_inverse(self):
        nl = tiny_builder().build()
        # cell a owns pins {0, 2}; slices come from cell_start.
        pins_of_a = nl.cell_pin[nl.cell_start[0]:nl.cell_start[1]]
        assert sorted(pins_of_a.tolist()) == [0, 2]
        # Every pin appears exactly once in the cell CSR.
        assert sorted(nl.cell_pin.tolist()) == list(range(nl.num_pins))

    def test_cell_num_nets(self):
        nl = tiny_builder().build()
        # a and b are on both nets; pad on one.
        assert nl.cell_num_nets.tolist() == [2, 2, 1]

    def test_cell_num_nets_dedups_multi_pin_same_net(self):
        builder = NetlistBuilder()
        builder.set_region(PlacementRegion(0, 0, 10, 10))
        builder.add_cell("a", 1, 1)
        builder.add_cell("b", 1, 1)
        builder.add_net("n", [("a", 0, 0), ("a", 0.2, 0), ("b", 0, 0)])
        nl = builder.build()
        assert nl.cell_num_nets.tolist() == [1, 1]

    def test_movable_partition(self):
        nl = tiny_builder().build()
        assert nl.num_movable == 2
        assert nl.movable_index.tolist() == [0, 1]
        assert nl.fixed_index.tolist() == [2]

    def test_net_mask_filters_degenerate_nets(self):
        builder = tiny_builder()
        builder.add_net("single", [("a", 0, 0)])
        builder.add_net("empty", [])
        nl = builder.build()
        assert nl.net_mask.tolist() == [True, True, False, False]

    def test_cell_index_lookup(self):
        nl = tiny_builder().build()
        assert nl.cell_index("b") == 1
        with pytest.raises(KeyError):
            nl.cell_index("zz")

    def test_validation_rejects_bad_pin2net(self):
        nl = tiny_builder().build()
        bad = nl.pin2net.copy()
        bad[0] = 1
        with pytest.raises(ValueError):
            Netlist(
                cell_name=nl.cell_name,
                cell_w=nl.cell_w,
                cell_h=nl.cell_h,
                movable=nl.movable,
                fixed_x=nl.fixed_x,
                fixed_y=nl.fixed_y,
                pin2cell=nl.pin2cell,
                pin_dx=nl.pin_dx,
                pin_dy=nl.pin_dy,
                pin2net=bad,
                net_start=nl.net_start,
                net_name=nl.net_name,
                net_weight=nl.net_weight,
                region=nl.region,
            )


class TestRegion:
    def test_uniform_rows_tile_region(self):
        region = PlacementRegion.with_uniform_rows(0, 0, 100, 95, 10)
        assert len(region.rows) == 9
        assert region.yh == 90  # shrunk to whole rows
        assert region.row_height == 10

    def test_degenerate_region_rejected(self):
        with pytest.raises(ValueError):
            PlacementRegion(0, 0, 0, 10)

    def test_row_sites(self):
        row = Row(y=0, height=10, xl=5, xh=25, site_width=2)
        assert row.num_sites == 10
        assert row.site_x(3) == 11

    def test_clamp(self):
        region = PlacementRegion(0, 0, 100, 50)
        x = np.array([-5.0, 99.0])
        y = np.array([25.0, 60.0])
        hw = np.array([2.0, 2.0])
        hh = np.array([1.0, 1.0])
        cx, cy = region.clamp(x, y, hw, hh)
        assert cx.tolist() == [2.0, 98.0]
        assert cy.tolist() == [25.0, 49.0]

    def test_non_uniform_row_height_raises(self):
        region = PlacementRegion(
            0, 0, 10, 20, rows=[Row(0, 10, 0, 10), Row(10, 5, 0, 10)]
        )
        with pytest.raises(ValueError, match="non-uniform"):
            region.row_height


class TestStats:
    def test_stats_counts(self):
        nl = tiny_builder().build()
        stats = compute_stats(nl)
        assert stats.num_cells == 3
        assert stats.num_nets == 2
        assert stats.num_pins == 5
        assert stats.num_fixed == 1
        assert stats.avg_net_degree == pytest.approx(2.5)

    def test_kilo_formatting(self):
        from repro.netlist.stats import _kilo

        assert _kilo(211_400) == "211k"
        assert _kilo(950) == "950"
        assert _kilo(2_177_000) == "2177k"
