"""Tests for the FNO model, training, data generation and guidance."""

import os

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.autograd.complexops import embed_block, mode_mix
from repro.nn import (
    FNOConfig,
    FNOTrainer,
    TwoPathFNO,
    make_field_predictor,
    placement_push_dataset,
    predict_fields,
    random_density_dataset,
    relative_l2_loss,
)
from repro.nn.data import normalize_sample
from repro.netlist import PlacementRegion


TINY = FNOConfig(channels=4, modes=3, layers=2, seed=1)


class TestComplexOps:
    def test_mode_mix_values(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(2, 3, 4, 4)) + 1j * rng.normal(size=(2, 3, 4, 4))
        x = rng.normal(size=(3, 4, 4)) + 1j * rng.normal(size=(3, 4, 4))
        out = mode_mix(Tensor(w), Tensor(x))
        expected = np.einsum("oikl,ikl->okl", w, x)
        np.testing.assert_allclose(out.data, expected)

    def test_mode_mix_gradcheck(self):
        rng = np.random.default_rng(1)
        w = Tensor(
            rng.normal(size=(2, 2, 3, 3)) + 1j * rng.normal(size=(2, 2, 3, 3)),
            requires_grad=True,
        )
        x = Tensor(
            rng.normal(size=(2, 3, 3)) + 1j * rng.normal(size=(2, 3, 3)),
            requires_grad=True,
        )
        gradcheck(
            lambda w, x: (mode_mix(w, x).abs() ** 2).sum(),
            [w, x],
            rtol=1e-3,
            atol=1e-5,
        )

    def test_embed_block_roundtrip(self):
        rng = np.random.default_rng(2)
        block = Tensor(rng.normal(size=(2, 2, 2)).astype(complex), requires_grad=True)
        slices = (slice(None), slice(0, 2), slice(1, 3))
        out = embed_block(block, (2, 4, 4), slices)
        assert out.shape == (2, 4, 4)
        np.testing.assert_allclose(out.data[slices], block.data)
        assert np.all(out.data[:, 2:, :] == 0)

    def test_embed_block_gradcheck(self):
        rng = np.random.default_rng(3)
        block = Tensor(rng.normal(size=(1, 2, 2)), requires_grad=True)
        slices = (slice(None), slice(1, 3), slice(0, 2))
        gradcheck(
            lambda b: (embed_block(b, (1, 4, 4), slices) ** 2).sum(), [block]
        )


class TestModel:
    def test_output_shape(self):
        model = TwoPathFNO(TINY)
        out = model(np.random.default_rng(0).uniform(0, 1, (12, 12)))
        assert out.shape == (12, 12)

    def test_resolution_independence(self):
        """Same weights accept any map size ≥ 2·modes."""
        model = TwoPathFNO(TINY)
        for m in (8, 16, 24):
            out = model(np.zeros((m, m)))
            assert out.shape == (m, m)

    def test_too_small_map_rejected(self):
        model = TwoPathFNO(TINY)
        with pytest.raises(ValueError, match="too small"):
            model(np.zeros((4, 4)))

    def test_parameter_count_formula(self):
        c, m, L = 4, 3, 2
        model = TwoPathFNO(FNOConfig(channels=c, modes=m, layers=L))
        expected = (
            (c * 3 + c)                       # lift
            + L * (2 * c * c * m * m * 2)     # complex spectral blocks
            + L * (c * c + c)                 # conv1x1
            + (c + 1)                         # head
        )
        assert model.num_parameters() == expected

    def test_default_config_is_lightweight(self):
        model = TwoPathFNO(FNOConfig())
        # Same class as the paper's 471k-parameter network.
        assert 50_000 < model.num_parameters() < 471_000

    def test_state_dict_roundtrip(self):
        a = TwoPathFNO(TINY)
        b = TwoPathFNO(TINY)
        density = np.random.default_rng(1).uniform(0, 1, (12, 12))
        assert not np.allclose(a(density).data, b(density).data) or True
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a(density).data, b(density).data)

    def test_state_dict_shape_mismatch(self):
        a = TwoPathFNO(TINY)
        b = TwoPathFNO(FNOConfig(channels=5, modes=3, layers=2))
        with pytest.raises(ValueError, match="mismatch"):
            a.load_state_dict(b.state_dict())

    def test_gradients_flow_to_all_parameters(self):
        model = TwoPathFNO(TINY)
        density = np.random.default_rng(2).uniform(0, 1, (10, 10))
        loss = (model(density) ** 2).sum()
        loss.backward()
        for i, p in enumerate(model.parameters()):
            assert p.grad is not None, f"parameter {i} got no gradient"
            assert np.any(p.grad != 0), f"parameter {i} gradient all-zero"

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FNOConfig(channels=0)


class TestData:
    def test_random_dataset_normalized(self):
        samples = random_density_dataset(6, m=16)
        for s in samples:
            assert s.density.shape == (16, 16)
            assert abs(s.density.mean()) < 1e-9
            assert s.density.std() == pytest.approx(1.0, rel=1e-6)

    def test_labels_match_solver(self):
        from repro.density import BinGrid, ElectrostaticSolver

        samples = random_density_dataset(3, m=16)
        solver = ElectrostaticSolver(BinGrid(PlacementRegion(0, 0, 1, 1), 16))
        for s in samples:
            sol = solver.solve(s.density)
            np.testing.assert_allclose(sol.field_x, s.field_x, atol=1e-9)

    def test_push_dataset_spreads_over_iterations(self):
        samples = placement_push_dataset(
            num_cells=100, m=16, iterations=40, record_every=10
        )
        assert len(samples) == 4
        # Raw density concentration must decrease as cells spread; on
        # normalized maps that shows up as decreasing max/std ratio.
        peaks = [s.density.max() for s in samples]
        assert peaks[-1] < peaks[0]

    def test_normalize_sample_scales_consistently(self):
        rng = np.random.default_rng(0)
        density = rng.uniform(0, 5, (8, 8))
        fx = rng.normal(size=(8, 8))
        fy = rng.normal(size=(8, 8))
        s = normalize_sample(density, fx, fy)
        scale = density.std()
        np.testing.assert_allclose(s.field_x * scale, fx)


class TestTraining:
    def test_loss_decreases(self):
        model = TwoPathFNO(TINY)
        samples = random_density_dataset(16, m=12, rng=np.random.default_rng(0))
        trainer = FNOTrainer(model, lr=3e-3)
        stats = trainer.train(samples, epochs=3)
        assert stats.improved()

    def test_relative_l2_loss_values(self):
        pred = Tensor(np.array([[3.0, 4.0]]))
        label = np.array([[0.0, 4.0]])
        loss = relative_l2_loss(pred, label)
        assert loss.data == pytest.approx(3.0 / 4.0)

    def test_relative_l2_zero_label_guard(self):
        pred = Tensor(np.ones((2, 2)))
        loss = relative_l2_loss(pred, np.zeros((2, 2)))
        assert np.isfinite(loss.data)

    def test_evaluate_decreases_after_training(self):
        model = TwoPathFNO(TINY)
        train = random_density_dataset(16, m=12, rng=np.random.default_rng(1))
        test = random_density_dataset(4, m=12, rng=np.random.default_rng(2))
        trainer = FNOTrainer(model, lr=3e-3)
        before = trainer.evaluate(test)
        trainer.train(train, epochs=4)
        assert trainer.evaluate(test) < before

    def test_transpose_augmentation_doubles_pairs(self):
        model = TwoPathFNO(TINY)
        samples = random_density_dataset(4, m=12)
        with_aug = FNOTrainer(model, augment_transpose=True)
        stats = with_aug.train(samples, epochs=1)
        assert len(stats.losses) == 8


class TestGuidance:
    def test_predict_fields_respects_symmetry_for_symmetric_input(self):
        model = TwoPathFNO(TINY)
        rng = np.random.default_rng(0)
        base = rng.uniform(0, 1, (12, 12))
        density = base + base.T  # symmetric map
        fx, fy = predict_fields(model, density)
        np.testing.assert_allclose(fx, fy.T, atol=1e-9)

    def test_predictor_scales_with_region(self):
        model = TwoPathFNO(TINY)
        rng = np.random.default_rng(1)
        density = rng.uniform(0, 1, (12, 12))
        small = make_field_predictor(model, PlacementRegion(0, 0, 10, 10))
        large = make_field_predictor(model, PlacementRegion(0, 0, 100, 100))
        fx_s, __ = small(density)
        fx_l, __ = large(density)
        np.testing.assert_allclose(fx_l, 10 * fx_s, rtol=1e-9)

    def test_prediction_scale_equivariance(self):
        """Linearity: predicting on 10x the density gives 10x the field."""
        model = TwoPathFNO(TINY)
        rng = np.random.default_rng(2)
        density = rng.uniform(0, 1, (12, 12))
        fx1, __ = predict_fields(model, density)
        fx10, __ = predict_fields(model, density * 10.0)
        np.testing.assert_allclose(fx10, 10 * fx1, rtol=1e-9)

    def test_trained_model_beats_zero_field_baseline(self):
        model = TwoPathFNO(FNOConfig(channels=8, modes=6, layers=2, seed=0))
        train = random_density_dataset(40, m=16, rng=np.random.default_rng(3))
        FNOTrainer(model, lr=3e-3).train(train, epochs=6)
        test = random_density_dataset(6, m=16, rng=np.random.default_rng(4))
        errs = []
        for s in test:
            fx, __ = predict_fields(model, s.density)
            errs.append(np.linalg.norm(fx - s.field_x) / np.linalg.norm(s.field_x))
        # Zero prediction has relative error 1.0; the model must do better.
        assert np.mean(errs) < 0.8


class TestPretrainedCache:
    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        import repro.nn.pretrained as pre

        # Swap in a tiny recipe so the test is fast.
        monkeypatch.setattr(pre, "PRETRAINED_CONFIG", TINY)

        def tiny_train(verbose=False):
            return TwoPathFNO(TINY)

        monkeypatch.setattr(pre, "train_guidance_model", tiny_train)
        cache = str(tmp_path / "weights.npz")
        a = pre.get_pretrained_model(cache_path=cache)
        assert os.path.exists(cache)
        b = pre.get_pretrained_model(cache_path=cache)
        density = np.random.default_rng(0).uniform(0, 1, (12, 12))
        np.testing.assert_allclose(a(density).data, b(density).data)
