"""Tests for the kernel profiler and the density-skip controller."""

import numpy as np

from repro.ops import DensitySkipController, KernelProfiler, get_profiler, use_profiler
from repro.ops.profiler import _NullProfiler


class TestProfiler:
    def test_default_profiler_is_noop(self):
        profiler = get_profiler()
        assert isinstance(profiler, _NullProfiler)
        profiler.launch("x")
        assert profiler.total == 0

    def test_context_counts(self):
        with use_profiler() as profiler:
            get_profiler().launch("a")
            get_profiler().launch("a", 2)
            get_profiler().launch("b")
        assert profiler.counts["a"] == 3
        assert profiler.counts["b"] == 1
        assert profiler.total == 4

    def test_nested_contexts_restore(self):
        with use_profiler() as outer:
            get_profiler().launch("x")
            with use_profiler() as inner:
                get_profiler().launch("y")
            get_profiler().launch("x")
        assert outer.counts["x"] == 2
        assert "y" not in outer.counts
        assert inner.counts["y"] == 1

    def test_marks(self):
        profiler = KernelProfiler()
        profiler.launch("a", 5)
        profiler.mark("iter")
        profiler.launch("a", 3)
        assert profiler.since("iter") == 3
        assert profiler.since("missing") == profiler.total

    def test_reset(self):
        profiler = KernelProfiler()
        profiler.launch("a")
        profiler.mark("m")
        profiler.reset()
        assert profiler.total == 0
        assert profiler.since("m") == 0

    def test_summary_format(self):
        profiler = KernelProfiler()
        profiler.launch("alpha", 7)
        text = profiler.summary()
        assert "alpha" in text and "7" in text

    def test_wirelength_op_combination_reduces_launches(self):
        """Combined WA op dispatches fewer reductions than split mode."""
        from repro.benchgen import CircuitSpec, generate_circuit
        from repro.wirelength import WirelengthOp

        nl = generate_circuit(CircuitSpec("prof", num_cells=80, num_macros=0))
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 50, nl.num_cells)
        y = rng.uniform(0, 50, nl.num_cells)
        with use_profiler() as fused:
            WirelengthOp(nl, combined=True)(x, y, 1.0)
        with use_profiler() as split:
            WirelengthOp(nl, combined=False)(x, y, 1.0)
        assert fused.total < split.total

    def test_density_extraction_reduces_launches(self):
        from repro.benchgen import CircuitSpec, generate_circuit
        from repro.density import DensitySystem

        nl = generate_circuit(CircuitSpec("prof2", num_cells=150))
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 100, nl.num_cells)
        y = rng.uniform(0, 100, nl.num_cells)
        with use_profiler() as extracted:
            DensitySystem(nl, 0.9, extraction=True,
                          rng=np.random.default_rng(1)).evaluate(x, y)
        with use_profiler() as fused:
            DensitySystem(nl, 0.9, extraction=False,
                          rng=np.random.default_rng(1)).evaluate(x, y)
        # The fused path scatters the movable cells twice (once inside the
        # union pass, once for the overflow map): strictly more work.
        assert (
            extracted.counts["density_scatter_cells"]
            < fused.counts["density_scatter_cells"]
        )


class TestSkipController:
    def test_computes_when_ratio_large(self):
        ctrl = DensitySkipController()
        ctrl.observe_ratio(0.5)
        assert ctrl.should_compute(iteration=5)
        assert not ctrl.skipping

    def test_skips_when_ratio_small_and_early(self):
        ctrl = DensitySkipController()
        ctrl.observe_ratio(0.001)
        assert ctrl.should_compute(10)  # first time: cache is stale
        ctrl.notify_computed(10)
        assert not ctrl.should_compute(11)
        assert ctrl.skipping

    def test_recomputes_every_period(self):
        ctrl = DensitySkipController(period=20)
        ctrl.observe_ratio(0.001)
        ctrl.notify_computed(0)
        assert not ctrl.should_compute(19)
        assert ctrl.should_compute(20)

    def test_never_skips_after_max_iteration(self):
        ctrl = DensitySkipController(max_iteration=100)
        ctrl.observe_ratio(0.0001)
        ctrl.notify_computed(99)
        assert ctrl.should_compute(100)
        assert ctrl.should_compute(150)

    def test_disabled_controller_always_computes(self):
        ctrl = DensitySkipController(enabled=False)
        ctrl.observe_ratio(1e-9)
        ctrl.notify_computed(1)
        assert ctrl.should_compute(2)
        assert not ctrl.skipping
