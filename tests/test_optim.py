"""Tests for optimizers and the preconditioner."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.density import FillerCells
from repro.optim import AdamOptimizer, NesterovOptimizer, Preconditioner


def quadratic_problem(n=20, seed=0):
    """Convex quadratic f(x) = Σ d_i (x_i - c_i)^2 with known optimum."""
    rng = np.random.default_rng(seed)
    d = rng.uniform(0.5, 3.0, n)
    cx = rng.uniform(-5, 5, n)
    cy = rng.uniform(-5, 5, n)

    def grad(x, y):
        return 2 * d * (x - cx), 2 * d * (y - cy)

    return grad, cx, cy


class TestNesterov:
    def test_converges_on_quadratic(self):
        grad, cx, cy = quadratic_problem()
        opt = NesterovOptimizer(np.zeros(20), np.zeros(20), initial_step=0.05)
        for __ in range(200):
            vx, vy = opt.positions
            opt.step(*grad(vx, vy))
        sx, sy = opt.solution
        assert np.abs(sx - cx).max() < 1e-3
        assert np.abs(sy - cy).max() < 1e-3

    def test_lipschitz_step_adapts(self):
        grad, __, __ = quadratic_problem()
        opt = NesterovOptimizer(np.zeros(20), np.zeros(20), initial_step=1e-6)
        for __ in range(3):
            vx, vy = opt.positions
            opt.step(*grad(vx, vy))
        # After observing two gradients the step should have grown toward
        # the inverse Lipschitz constant (~1/6 for max curvature 6).
        assert opt.step_length > 1e-6

    def test_max_step_respected(self):
        grad, __, __ = quadratic_problem()
        opt = NesterovOptimizer(
            np.zeros(20), np.zeros(20), initial_step=10.0, max_step=0.01
        )
        vx, vy = opt.positions
        opt.step(*grad(vx, vy))
        assert opt.step_length <= 0.01

    def test_bound_first_step_sets_initial_alpha(self):
        grad, __, __ = quadratic_problem()
        opt = NesterovOptimizer(np.zeros(20), np.zeros(20), initial_step=1.0)
        opt.bound_first_step(0.025)
        assert opt.step_length == 0.025
        vx, vy = opt.positions
        opt.step(*grad(vx, vy))  # first step uses the bounded alpha

    def test_bound_first_step_rejected_after_stepping(self):
        grad, __, __ = quadratic_problem()
        opt = NesterovOptimizer(np.zeros(20), np.zeros(20), initial_step=0.05)
        vx, vy = opt.positions
        opt.step(*grad(vx, vy))
        with pytest.raises(RuntimeError, match="before the first step"):
            opt.bound_first_step(0.01)

    def test_bound_first_step_rejects_nonpositive(self):
        opt = NesterovOptimizer(np.zeros(20), np.zeros(20))
        with pytest.raises(ValueError, match="positive"):
            opt.bound_first_step(0.0)

    def test_clamp_applies_to_both_solutions(self):
        opt = NesterovOptimizer(np.array([5.0]), np.array([5.0]), initial_step=1.0)
        opt.step(np.array([100.0]), np.array([100.0]))

        def clamp(x, y):
            return np.clip(x, 0, 10), np.clip(y, 0, 10)

        opt.clamp(clamp)
        assert 0 <= opt.solution[0][0] <= 10
        assert 0 <= opt.positions[0][0] <= 10

    def test_reset_momentum(self):
        grad, __, __ = quadratic_problem()
        opt = NesterovOptimizer(np.zeros(20), np.zeros(20), initial_step=0.05)
        for __ in range(5):
            vx, vy = opt.positions
            opt.step(*grad(vx, vy))
        opt.reset_momentum()
        np.testing.assert_array_equal(opt.positions[0], opt.solution[0])

    def test_faster_than_plain_gradient_descent(self):
        """Acceleration sanity: Nesterov beats GD on an ill-conditioned
        quadratic at equal step length and iteration budget."""
        rng = np.random.default_rng(1)
        d = np.concatenate([np.full(10, 0.05), np.full(10, 3.0)])
        c = rng.uniform(-5, 5, 20)

        def grad(x):
            return 2 * d * (x - c)

        step = 0.15
        x_gd = np.zeros(20)
        opt = NesterovOptimizer(np.zeros(20), np.zeros(20), initial_step=step,
                                max_step=step)
        for __ in range(150):
            x_gd = x_gd - step * grad(x_gd)
            vx, vy = opt.positions
            opt.step(grad(vx), np.zeros(20))
        err_gd = np.abs(x_gd - c).max()
        err_nesterov = np.abs(opt.solution[0] - c).max()
        assert err_nesterov < err_gd


class TestAdam:
    def test_converges_on_quadratic(self):
        grad, cx, cy = quadratic_problem()
        opt = AdamOptimizer(np.zeros(20), np.zeros(20), lr=0.3)
        for __ in range(800):
            x, y = opt.positions
            opt.step(*grad(x, y))
        assert np.abs(opt.solution[0] - cx).max() < 0.05

    def test_step_magnitude_bounded_by_lr(self):
        opt = AdamOptimizer(np.zeros(4), np.zeros(4), lr=0.5)
        x_before = opt.positions[0].copy()
        opt.step(np.full(4, 1e9), np.zeros(4))
        displacement = np.abs(opt.positions[0] - x_before).max()
        assert displacement <= 0.5 * 1.01

    def test_reset(self):
        opt = AdamOptimizer(np.zeros(4), np.zeros(4))
        opt.step(np.ones(4), np.ones(4))
        opt.reset_momentum()
        assert opt._t == 0
        assert np.all(opt._mx == 0)


class TestPreconditioner:
    @pytest.fixture(scope="class")
    def setup(self):
        nl = generate_circuit(CircuitSpec("pre", num_cells=120, num_macros=0))
        fillers = FillerCells.for_netlist(nl, 0.9)
        return nl, fillers, Preconditioner(nl, fillers)

    def test_omega_monotone_in_lambda(self, setup):
        __, __, pre = setup
        omegas = [pre.omega(lam) for lam in (1e-6, 1e-3, 1e-1, 10.0)]
        assert all(a < b for a, b in zip(omegas, omegas[1:]))
        assert 0 <= omegas[0] < omegas[-1] <= 1

    def test_omega_limits(self, setup):
        __, __, pre = setup
        assert pre.omega(0.0) == 0.0
        assert pre.omega(1e12) == pytest.approx(1.0, abs=1e-6)

    def test_lambda_for_omega_inverts(self, setup):
        __, __, pre = setup
        for target in (0.05, 0.5, 0.95):
            lam = pre.lambda_for_omega(target)
            assert pre.omega(lam) == pytest.approx(target, rel=1e-9)

    def test_apply_shrinks_high_degree_cells_more(self, setup):
        nl, fillers, pre = setup
        n = nl.num_movable + fillers.count
        gx = np.ones(n)
        gy = np.ones(n)
        out_x, __ = pre.apply(gx, gy, lam=0.0)
        # With λ=0 the denominator is max(|S_i|, 1): higher-degree movable
        # cells get smaller preconditioned gradients.
        degrees = nl.cell_num_nets[nl.movable_index]
        hi = np.argmax(degrees)
        lo = np.argmin(degrees)
        if degrees[hi] > max(degrees[lo], 1):
            assert out_x[hi] < out_x[lo]

    def test_filler_rows_use_area_only(self, setup):
        nl, fillers, pre = setup
        if fillers.count == 0:
            pytest.skip("no fillers for this spec")
        n = nl.num_movable + fillers.count
        out_x, __ = pre.apply(np.ones(n), np.ones(n), lam=2.0)
        expected = 1.0 / max(2.0 * fillers.width * fillers.height, 1.0)
        assert out_x[-1] == pytest.approx(expected)

    def test_invalid_omega_rejected(self, setup):
        __, __, pre = setup
        with pytest.raises(ValueError):
            pre.lambda_for_omega(1.0)
