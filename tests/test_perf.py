"""Tests for the performance layer: Workspace arena, bit-identity, bench.

The arena's contract is strict: every workspace-threaded operator must
produce *bit-identical* results to its allocating fallback, and the
steady-state hot loop must perform zero new arena allocations.  Both are
asserted here directly, plus the ``repro bench`` harness end to end.
"""

import json

import numpy as np
import pytest

from repro import PlacementParams, make_design
from repro.analysis.sanitizer import active, disable
from repro.autograd import gradcheck_all
from repro.core import XPlacer
from repro.density import BinGrid, DensityScatter, DensitySystem
from repro.density.electrostatics import ElectrostaticSolver
from repro.dtypes import FLOAT, INT
from repro.perf import Workspace, maybe_workspace
from repro.perf import bench as bench_mod
from repro.wirelength import WirelengthOp


@pytest.fixture(scope="module")
def netlist():
    return make_design("fft_1", num_cells=150)


@pytest.fixture(scope="module")
def grid(netlist):
    return BinGrid.for_netlist(netlist)


@pytest.fixture(scope="module")
def cells(netlist, grid):
    """Random movable-cell geometry inside the region (no large cells)."""
    rng = np.random.default_rng(3)
    n = 80
    region = netlist.region
    x = rng.uniform(region.xl + 5, region.xh - 5, n)
    y = rng.uniform(region.yl + 5, region.yh - 5, n)
    w = rng.uniform(0.5, 1.5 * grid.bin_w, n)
    h = rng.uniform(0.5, 1.5 * grid.bin_h, n)
    return x, y, w, h


class TestWorkspace:
    def test_get_reuses_buffer(self):
        ws = Workspace()
        a = ws.get("op.tmp", 16)
        b = ws.get("op.tmp", 16)
        assert a is b
        assert ws.misses == 1 and ws.hits == 1

    def test_distinct_shapes_distinct_buffers(self):
        ws = Workspace()
        a = ws.get("op.tmp", 16)
        b = ws.get("op.tmp", 32)
        assert a is not b and ws.num_buffers == 2

    def test_distinct_dtypes_distinct_buffers(self):
        ws = Workspace()
        a = ws.get("op.tmp", 8, dtype=FLOAT)
        b = ws.get("op.tmp", 8, dtype=INT)
        assert a.dtype == FLOAT and b.dtype == INT and a is not b

    def test_zeros_clears_every_time(self):
        ws = Workspace()
        a = ws.zeros("op.z", 4)
        a[:] = 7.0
        b = ws.zeros("op.z", 4)
        assert b is a and np.array_equal(b, np.zeros(4))

    def test_arange_cached_and_readonly(self):
        ws = Workspace()
        r = ws.arange(10)
        assert np.array_equal(r, np.arange(10)) and r.dtype == INT
        assert ws.arange(10) is r
        with pytest.raises(ValueError):
            r[0] = 5

    def test_nbytes_by_prefix_groups_namespaces(self):
        ws = Workspace()
        ws.get("wa.px", 10)
        ws.get("wa.py", 10)
        ws.get("sc.scale", 5)
        by_op = ws.nbytes_by_prefix()
        assert set(by_op) == {"wa", "sc"}
        assert by_op["wa"] == 4 * by_op["sc"]

    def test_stats_and_reset_counters(self):
        ws = Workspace()
        ws.get("a.x", 4)
        ws.get("a.x", 4)
        stats = ws.stats()
        assert stats["buffers"] == 1 and stats["hit_rate"] == 0.5
        ws.reset_counters()
        assert ws.hits == 0 and ws.misses == 0
        assert ws.num_buffers == 1  # buffers stay warm

    def test_clear_drops_everything(self):
        ws = Workspace()
        ws.get("a.x", 4)
        ws.clear()
        assert ws.num_buffers == 0 and ws.nbytes == 0

    def test_maybe_workspace(self):
        assert maybe_workspace(False) is None
        assert isinstance(maybe_workspace(True), Workspace)


class TestBitIdentity:
    """Every arena path must match the allocating path bit-for-bit."""

    def test_wirelength_op(self, netlist):
        rng = np.random.default_rng(11)
        x = rng.uniform(10, 90, netlist.num_cells)
        y = rng.uniform(10, 90, netlist.num_cells)
        op_al = WirelengthOp(netlist)
        op_ws = WirelengthOp(netlist, workspace=Workspace())
        for gamma in (0.5, 4.0):
            for _ in range(3):  # steady-state reuse must stay identical
                ra = op_al(x, y, gamma)
                rw = op_ws(x, y, gamma)
                assert rw.wa == ra.wa and rw.hpwl == ra.hpwl
                assert np.array_equal(rw.grad_x, ra.grad_x)
                assert np.array_equal(rw.grad_y, ra.grad_y)

    def test_scatter_and_gather(self, grid, cells):
        x, y, w, h = cells
        sc_al = DensityScatter(grid)
        sc_ws = DensityScatter(grid, workspace=Workspace())
        field = np.random.default_rng(5).normal(size=grid.shape)
        for _ in range(3):
            assert np.array_equal(
                sc_ws.scatter(x, y, w, h), sc_al.scatter(x, y, w, h)
            )
            assert np.array_equal(
                sc_ws.gather(field, x, y, w, h),
                sc_al.gather(field, x, y, w, h),
            )

    def test_gather_pair_matches_two_gathers(self, grid, cells):
        x, y, w, h = cells
        rng = np.random.default_rng(6)
        fa = rng.normal(size=grid.shape)
        fb = rng.normal(size=grid.shape)
        for ws in (None, Workspace()):
            sc = DensityScatter(grid, workspace=ws)
            for _ in range(3):
                ga, gb = sc.gather_pair(fa, fb, x, y, w, h)
                assert np.array_equal(ga, sc.gather(fa, x, y, w, h))
                assert np.array_equal(gb, sc.gather(fb, x, y, w, h))

    def test_prepare_windows_handle(self, grid, cells):
        x, y, w, h = cells
        sc = DensityScatter(grid, workspace=Workspace())
        fa = np.random.default_rng(7).normal(size=grid.shape)
        fb = np.random.default_rng(8).normal(size=grid.shape)
        win = sc.prepare_windows(x, y, w, h, tag="@t")
        assert win is not None
        assert np.array_equal(
            sc.scatter(x, y, w, h, windows=win), sc.scatter(x, y, w, h)
        )
        assert np.array_equal(
            sc.gather(fa, x, y, w, h, windows=win), sc.gather(fa, x, y, w, h)
        )
        ga, gb = sc.gather_pair(fa, fb, x, y, w, h, windows=win)
        assert np.array_equal(ga, sc.gather(fa, x, y, w, h))
        assert np.array_equal(gb, sc.gather(fb, x, y, w, h))

    def test_prepare_windows_none_without_arena(self, grid, cells):
        x, y, w, h = cells
        assert DensityScatter(grid).prepare_windows(x, y, w, h) is None

    def test_field_solver(self, grid):
        rng = np.random.default_rng(9)
        density = rng.normal(size=grid.shape)
        solver_al = ElectrostaticSolver(grid)
        solver_ws = ElectrostaticSolver(grid, workspace=Workspace())
        for _ in range(3):
            fa = solver_al.solve(density)
            fw = solver_ws.solve(density)
            assert fw.energy == fa.energy
            assert np.array_equal(fw.potential, fa.potential)
            assert np.array_equal(fw.field_x, fa.field_x)
            assert np.array_equal(fw.field_y, fa.field_y)

    def test_density_system_evaluate(self, netlist):
        rng = np.random.default_rng(13)
        systems = []
        for attach in (False, True):
            system = DensitySystem(netlist, rng=np.random.default_rng(1))
            if attach:
                system.attach_workspace(Workspace())
            systems.append(system)
        sys_al, sys_ws = systems
        x = rng.uniform(10, 90, netlist.num_cells)
        y = rng.uniform(10, 90, netlist.num_cells)
        for _ in range(3):
            ra = sys_al.evaluate(x, y)
            rw = sys_ws.evaluate(x, y)
            assert rw.overflow == ra.overflow and rw.energy == ra.energy
            for name in ("grad_x", "grad_y", "filler_grad_x",
                         "filler_grad_y", "density_map", "total_map"):
                assert np.array_equal(getattr(rw, name), getattr(ra, name)), name

    def test_gp_trajectory_identical(self, netlist):
        traces = {}
        for workspace in (True, False):
            params = PlacementParams(
                workspace=workspace, max_iterations=25, min_iterations=5,
                seed=2,
            )
            result = XPlacer(netlist, params).run()
            traces[workspace] = (
                result.recorder.trace("hpwl"), result.x, result.y
            )
        assert np.array_equal(traces[True][0], traces[False][0])
        assert np.array_equal(traces[True][1], traces[False][1])
        assert np.array_equal(traces[True][2], traces[False][2])


class TestSanitizedAndGradcheck:
    def test_gradcheck_all_passes(self):
        assert len(gradcheck_all()) > 0

    def test_sanitized_workspace_run_is_clean(self, netlist, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        try:
            params = PlacementParams(
                workspace=True, max_iterations=20, min_iterations=5
            )
            result = XPlacer(netlist, params).run()
            sanitizer = active()
            assert sanitizer is not None and sanitizer.checks > 0
            assert sanitizer.faults == 0
            assert np.isfinite(result.hpwl)
        finally:
            disable()


class TestArenaSteadyState:
    def test_no_new_allocations_after_warmup(self, netlist):
        engine, pos_x, pos_y, gamma, lam = bench_mod._build(
            netlist, workspace=True, seed=0
        )
        ws = engine.workspace
        assert ws is not None
        for i in range(3):  # warm the arena
            bench_mod._step(engine, pos_x, pos_y, gamma, lam, i)
        buffers = ws.num_buffers
        ws.reset_counters()
        for i in range(10):  # steady state: hits only
            bench_mod._step(engine, pos_x, pos_y, gamma, lam, 3 + i)
        assert ws.misses == 0 and ws.hits > 0
        assert ws.num_buffers == buffers
        assert ws.stats()["hit_rate"] == 1.0


class TestBench:
    @pytest.fixture(scope="class")
    def report(self):
        return bench_mod.run_bench(
            "tiny", iters=2, warmup=1, trajectory_iters=8
        )

    def test_report_structure(self, report):
        assert report["schema"] == bench_mod.SCHEMA_VERSION
        assert report["size"] == "tiny" and report["iters"] == 2
        assert isinstance(report["step_reduction_pct"], float)
        for mode in ("workspace", "fallback"):
            ops = report["modes"][mode]["operator_seconds"]
            assert set(ops) == set(bench_mod.OPERATORS)
            peaks = report["modes"][mode]["operator_peak_temp_bytes"]
            assert all(peaks[op] >= 0 for op in bench_mod.OPERATORS)

    def test_gradients_identical(self, report):
        assert report["gradients_identical"] is True

    def test_arena_steady_state_in_report(self, report):
        arena = report["modes"]["workspace"]["arena"]
        assert arena["hit_rate"] == 1.0 and arena["misses"] == 0

    def test_trajectory_identical(self, report):
        traj = report["trajectory"]
        assert traj["hpwl_identical"] and traj["positions_identical"]

    def test_write_load_roundtrip(self, report, tmp_path):
        path = bench_mod.write_report(report, str(tmp_path / "b.json"))
        assert bench_mod.load_report(path) == json.loads(
            json.dumps(report)
        )

    def test_compare_no_regressions_vs_self(self, report):
        assert bench_mod.compare_reports(report, report) == []

    def test_compare_flags_step_regression(self, report):
        old = json.loads(json.dumps(report))
        old["modes"]["workspace"]["step_seconds_median"] /= 10.0
        problems = bench_mod.compare_reports(report, old)
        assert any("step seconds" in p for p in problems)

    def test_compare_flags_operator_regression(self, report):
        old = json.loads(json.dumps(report))
        old["modes"]["workspace"]["operator_seconds"]["wirelength"] /= 10.0
        problems = bench_mod.compare_reports(report, old)
        assert any("wirelength regressed" in p for p in problems)

    def test_compare_flags_size_mismatch(self, report):
        old = json.loads(json.dumps(report))
        old["size"] = "medium"
        problems = bench_mod.compare_reports(report, old)
        assert len(problems) == 1 and "size mismatch" in problems[0]

    def test_compare_flags_nonidentical_gradients(self, report):
        new = json.loads(json.dumps(report))
        new["gradients_identical"] = False
        problems = bench_mod.compare_reports(new, report)
        assert any("bit-identical" in p for p in problems)

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="unknown bench size"):
            bench_mod.run_bench("galactic")

    def test_format_report(self, report):
        text = bench_mod.format_report(report)
        assert "step median" in text
        assert "gradients bit-identical: True" in text
        for op in bench_mod.OPERATORS:
            assert op in text
        assert "arena:" in text and "trajectory" in text


class TestBenchCLI:
    def test_bench_writes_report_and_compares(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "BENCH_operator.json")
        assert main(["bench", "--size", "tiny", "--iters", "1",
                     "--warmup", "1", "--out", out]) == 0
        report = bench_mod.load_report(out)
        assert report["gradients_identical"] is True
        assert "wrote" in capsys.readouterr().out

        # Self-compare: a fresh run against the saved report with a huge
        # threshold cannot regress.
        out2 = str(tmp_path / "second.json")
        assert main(["bench", "--size", "tiny", "--iters", "1",
                     "--warmup", "1", "--out", out2,
                     "--compare", out, "--threshold", "50"]) == 0
        assert "no regressions" in capsys.readouterr().out

        # A doctored baseline 1000x faster must trip the gate.
        report["modes"]["workspace"]["step_seconds_median"] /= 1000.0
        report["modes"]["workspace"]["step_seconds_mean"] /= 1000.0
        fast = str(tmp_path / "fast.json")
        bench_mod.write_report(report, fast)
        assert main(["bench", "--size", "tiny", "--iters", "1",
                     "--warmup", "1", "--out", out2,
                     "--compare", fast]) == 1

    def test_compare_missing_file_is_usage_error(self, tmp_path):
        from repro.cli import main

        out = str(tmp_path / "r.json")
        assert main(["bench", "--size", "tiny", "--iters", "1",
                     "--warmup", "1", "--out", out,
                     "--compare", str(tmp_path / "nope.json")]) == 2
