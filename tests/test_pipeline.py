"""Tests for the Stage/Pipeline layer and the flow regressions.

The flows (`run_flow`, `run_mixed_size_flow`) are now pipeline
compositions; the regression classes assert their metrics are identical
to the hand-rolled GP→LG→DP sequences they replaced.
"""

import json

import numpy as np
import pytest

from repro import PlacementParams, make_design, run_flow, run_mixed_size_flow
from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import XPlacer
from repro.detail import DetailedPlacer
from repro.legalize import FenceAwareLegalizer, check_legal
from repro.legalize.macros import MacroLegalizer
from repro.pipeline import (
    DetailStage,
    FlowReport,
    GlobalPlaceStage,
    LegalizeStage,
    Pipeline,
    PlacementContext,
    RouteStage,
    Stage,
    freeze_cells,
    movable_macro_indices,
)
from repro.wirelength import hpwl as hpwl_fn


@pytest.fixture(scope="module")
def netlist():
    return make_design("fft_1", num_cells=300)


@pytest.fixture(scope="module")
def params():
    return PlacementParams(max_iterations=300)


class AddMetric(Stage):
    name = "add"

    def __init__(self, key, value, name=None):
        super().__init__(name)
        self.key = key
        self.value = value

    def execute(self, ctx):
        return {self.key: self.value}


class ReadMetric(Stage):
    """Proves metrics written by one stage are visible to the next."""

    name = "read"

    def __init__(self, key):
        super().__init__()
        self.key = key

    def execute(self, ctx):
        return {"seen": ctx.metrics[self.key]}


class Boom(Stage):
    name = "boom"

    def execute(self, ctx):
        raise RuntimeError("boom")


def _tiny_context():
    nl = generate_circuit(CircuitSpec("tinyctx", num_cells=60))
    return PlacementContext(netlist=nl)


class TestPipelineMechanics:
    def test_metrics_propagate_between_stages(self):
        ctx = _tiny_context()
        report = Pipeline(
            [AddMetric("a", 1.5), ReadMetric("a")], name="prop"
        ).run(ctx)
        assert ctx.metrics == {"a": 1.5, "seen": 1.5}
        assert report.stage("read").metrics["seen"] == 1.5
        assert report.metrics == {"a": 1.5, "seen": 1.5}

    def test_per_stage_timing(self):
        ctx = _tiny_context()
        report = Pipeline(
            [AddMetric("a", 1, name="s1"), AddMetric("b", 2, name="s2")],
            name="timed",
        ).run(ctx)
        assert [s.name for s in report.stages] == ["s1", "s2"]
        assert all(s.seconds >= 0 for s in report.stages)
        assert report.seconds("s1", "s2") <= report.total_seconds + 1e-6
        assert report.ok

    def test_report_serializable(self):
        ctx = _tiny_context()
        report = Pipeline([AddMetric("a", 1.5)], name="ser").run(ctx)
        payload = json.loads(report.to_json())
        assert payload["pipeline"] == "ser"
        assert payload["design"] == "tinyctx"
        assert payload["ok"] is True
        assert payload["stages"][0]["metrics"] == {"a": 1.5}
        assert "tinyctx" in report.summary()

    def test_report_json_round_trip(self):
        ctx = _tiny_context()
        report = Pipeline(
            [AddMetric("a", 1.5, name="s1"), AddMetric("b", 2, name="s2")],
            name="rt",
        ).run(ctx)
        restored = FlowReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        assert restored.pipeline == "rt"
        assert restored.design == "tinyctx"
        assert [s.name for s in restored.stages] == ["s1", "s2"]
        assert restored.stage("s1").metrics == {"a": 1.5}
        assert restored.total_seconds == report.total_seconds
        assert restored.ok

    def test_failed_report_round_trip(self):
        ctx = _tiny_context()
        pipeline = Pipeline([Boom()], name="failing-rt")
        with pytest.raises(RuntimeError):
            pipeline.run(ctx)
        report = ctx.report
        restored = FlowReport.from_dict(report.to_dict())
        assert not restored.ok
        assert restored.stage("boom").error == report.stage("boom").error

    def test_error_context_attached(self):
        ctx = _tiny_context()
        pipeline = Pipeline([AddMetric("a", 1), Boom()], name="failing")
        with pytest.raises(RuntimeError, match="boom") as excinfo:
            pipeline.run(ctx)
        err = excinfo.value
        assert err.pipeline_name == "failing"
        assert err.pipeline_stage == "boom"
        # Partial report: the successful stage plus the failed one.
        assert [s.name for s in err.flow_report.stages] == ["add", "boom"]
        assert err.flow_report.stages[-1].error == "RuntimeError: boom"
        assert not err.flow_report.ok
        assert ctx.report is err.flow_report

    def test_unknown_stage_lookup(self):
        ctx = _tiny_context()
        report = Pipeline([AddMetric("a", 1)], name="p").run(ctx)
        with pytest.raises(KeyError, match="no stage named"):
            report.stage("nope")

    def test_positions_required_before_consuming_stage(self):
        ctx = _tiny_context()
        with pytest.raises(RuntimeError, match="no positions"):
            Pipeline([LegalizeStage()], name="bad").run(ctx)

    def test_unknown_placer_raises_value_error(self):
        ctx = _tiny_context()
        ctx.placer = "simulated-annealing"
        with pytest.raises(ValueError, match="unknown placer"):
            Pipeline([GlobalPlaceStage()], name="p").run(ctx)


class TestStandardFlowRegression:
    """run_flow must be byte-identical to the hand-rolled sequence it
    replaced (same seeds ⇒ same HPWL, legality and positions)."""

    @pytest.fixture(scope="class")
    def handrolled(self, netlist, params):
        gp = XPlacer(netlist, params).run()
        lx, ly = FenceAwareLegalizer(netlist).legalize(gp.x, gp.y)
        lg_hpwl = hpwl_fn(netlist, lx, ly)
        dp = DetailedPlacer(netlist, max_passes=1).place(lx, ly)
        report = check_legal(netlist, dp.x, dp.y)
        return gp, lg_hpwl, dp, report

    @pytest.fixture(scope="class")
    def piped(self, netlist, params):
        return run_flow(netlist, placer="xplace", params=params, dp_passes=1)

    def test_metrics_unchanged(self, handrolled, piped):
        gp, lg_hpwl, dp, report = handrolled
        assert piped.gp_hpwl == gp.hpwl
        assert piped.gp_iterations == gp.iterations
        assert piped.lg_hpwl == lg_hpwl
        assert piped.dp_hpwl == dp.hpwl_after
        assert piped.legal == report.legal

    def test_positions_unchanged(self, handrolled, piped):
        __, __, dp, __ = handrolled
        np.testing.assert_array_equal(piped.x, dp.x)
        np.testing.assert_array_equal(piped.y, dp.y)

    def test_flow_report_attached(self, piped):
        assert isinstance(piped.report, FlowReport)
        assert [s.name for s in piped.report.stages] == ["gp", "lg", "dp"]
        assert piped.report.stage("gp").metrics["gp_hpwl"] == piped.gp_hpwl
        # dp_seconds is the LG+DP wall clock, per the paper's DP/s column.
        assert piped.dp_seconds == piped.report.seconds("lg", "dp")

    def test_route_adds_gr_stage(self, netlist):
        r = run_flow(netlist, dp_passes=0, route=True, route_grid_m=16)
        assert [s.name for s in r.report.stages] == ["gp", "lg", "dp", "gr"]
        assert r.top5_overflow is not None
        assert r.gr_seconds is not None

    def test_quadratic_through_flow(self, netlist):
        r = run_flow(netlist, placer="quadratic", dp_passes=0)
        assert r.legal
        assert r.placer == "quadratic"
        assert r.gp_hpwl > 0

    def test_flow_callbacks_reach_gp_loop(self, netlist):
        seen = []

        class Count:
            def on_start(self, info):
                seen.append("start")

            def on_iteration(self, record):
                seen.append("iter")

            def on_stop(self, info):
                seen.append("stop")

        small = PlacementParams(min_iterations=5, max_iterations=5)
        r = run_flow(netlist, params=small, dp_passes=0, callbacks=[Count()])
        assert seen[0] == "start" and seen[-1] == "stop"
        assert seen.count("iter") == r.gp_iterations == 5


class TestMixedFlowRegression:
    """run_mixed_size_flow as a pipeline == the hand-rolled mGP→mLG→
    freeze→cGP→LG→DP sequence."""

    @pytest.fixture(scope="class")
    def mixed(self):
        return generate_circuit(
            CircuitSpec(
                "mixedpipe",
                num_cells=200,
                num_macros=1,
                num_movable_macros=2,
                movable_macro_fraction=0.15,
                utilization=0.5,
            )
        )

    @pytest.fixture(scope="class")
    def mixed_params(self):
        return PlacementParams(max_iterations=150)

    @pytest.fixture(scope="class")
    def handrolled(self, mixed, mixed_params):
        macros = movable_macro_indices(mixed)
        mgp = XPlacer(mixed, mixed_params).run()
        lx, ly = MacroLegalizer(mixed).legalize(mgp.x, mgp.y, macros)
        frozen = freeze_cells(mixed, macros, lx, ly)
        cgp = XPlacer(frozen, mixed_params).run()
        sx, sy = FenceAwareLegalizer(frozen).legalize(cgp.x, cgp.y)
        dp = DetailedPlacer(frozen, max_passes=0).place(sx, sy)
        report = check_legal(frozen, dp.x, dp.y)
        return dp, hpwl_fn(mixed, dp.x, dp.y), report

    @pytest.fixture(scope="class")
    def piped(self, mixed, mixed_params):
        return run_mixed_size_flow(mixed, mixed_params, dp_passes=0)

    def test_metrics_unchanged(self, handrolled, piped):
        dp, true_hpwl, report = handrolled
        assert piped.hpwl == true_hpwl
        assert piped.legal == report.legal
        assert piped.num_macros == 2
        np.testing.assert_array_equal(piped.x, dp.x)
        np.testing.assert_array_equal(piped.y, dp.y)

    def test_stage_breakdown(self, piped):
        names = [s.name for s in piped.report.stages]
        assert names == ["mgp", "mlg", "freeze", "cgp", "lg", "dp"]
        assert piped.mgp_seconds == piped.report.stage("mgp").seconds
        assert piped.finish_seconds == piped.report.seconds(
            "mlg", "freeze", "cgp", "lg", "dp"
        )


class TestCustomComposition:
    """The extensibility claim: new flows are stage lists, not new code."""

    def test_gp_only_pipeline(self, netlist):
        ctx = PlacementContext(
            netlist=netlist, params=PlacementParams(max_iterations=40,
                                                    min_iterations=40)
        )
        report = Pipeline([GlobalPlaceStage()], name="gp-only").run(ctx)
        assert ctx.gp_result is not None
        assert ctx.x is not None
        assert report.stage("gp").metrics["gp_iterations"] == 40

    def test_route_without_dp(self, netlist):
        ctx = PlacementContext(
            netlist=netlist, params=PlacementParams(max_iterations=40,
                                                    min_iterations=40)
        )
        Pipeline(
            [GlobalPlaceStage(), LegalizeStage(), RouteStage(grid_m=16)],
            name="gp-lg-gr",
        ).run(ctx)
        assert ctx.routing is not None
        assert "top5_overflow" in ctx.metrics
        assert "dp_hpwl" not in ctx.metrics

    def test_two_gp_stages_report_separately(self, netlist):
        small = PlacementParams(max_iterations=20, min_iterations=20)
        ctx = PlacementContext(netlist=netlist, params=small)
        report = Pipeline(
            [GlobalPlaceStage(name="first"), GlobalPlaceStage(name="second")],
            name="twice",
        ).run(ctx)
        assert report.stage("first").metrics["gp_iterations"] == 20
        assert report.stage("second").metrics["gp_iterations"] == 20
