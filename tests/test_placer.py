"""Integration tests: XPlacer and the DREAMPlace-style baseline."""

import numpy as np
import pytest

from repro.baseline import DreamPlaceStyleBaseline
from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams, XPlacer
from repro.wirelength import hpwl


@pytest.fixture(scope="module")
def netlist():
    return generate_circuit(
        CircuitSpec("placer", num_cells=400, num_macros=2, num_pads=16)
    )


@pytest.fixture(scope="module")
def xplace_result(netlist):
    return XPlacer(netlist, PlacementParams(max_iterations=500)).run()


class TestXPlacer:
    def test_converges(self, xplace_result):
        assert xplace_result.converged
        assert xplace_result.overflow < 0.10

    def test_beats_random_placement(self, netlist, xplace_result):
        rng = np.random.default_rng(0)
        region = netlist.region
        x = xplace_result.x.copy()
        y = xplace_result.y.copy()
        mov = netlist.movable_index
        x[mov] = rng.uniform(region.xl, region.xh, len(mov))
        y[mov] = rng.uniform(region.yl, region.yh, len(mov))
        assert xplace_result.hpwl < 0.7 * hpwl(netlist, x, y)

    def test_cells_inside_region(self, netlist, xplace_result):
        region = netlist.region
        mov = netlist.movable_index
        hw = netlist.cell_w[mov] / 2
        hh = netlist.cell_h[mov] / 2
        assert np.all(xplace_result.x[mov] - hw >= region.xl - 1e-6)
        assert np.all(xplace_result.x[mov] + hw <= region.xh + 1e-6)
        assert np.all(xplace_result.y[mov] - hh >= region.yl - 1e-6)
        assert np.all(xplace_result.y[mov] + hh <= region.yh + 1e-6)

    def test_fixed_cells_unmoved(self, netlist, xplace_result):
        fixed = ~netlist.movable
        np.testing.assert_array_equal(
            xplace_result.x[fixed], netlist.fixed_x[fixed]
        )

    def test_overflow_decreases_overall(self, xplace_result):
        trace = xplace_result.recorder.trace("overflow")
        assert trace[-1] < trace[0] * 0.2

    def test_omega_increases(self, xplace_result):
        omega = xplace_result.recorder.trace("omega")
        assert omega[-1] > omega[0]
        assert omega[-1] > 0.3

    def test_gamma_shrinks(self, xplace_result):
        gamma = xplace_result.recorder.trace("gamma")
        assert gamma[-1] < gamma[0]

    def test_deterministic_given_seed(self, netlist):
        params = PlacementParams(max_iterations=40, min_iterations=40, seed=3)
        a = XPlacer(netlist, params).run()
        b = XPlacer(netlist, params).run()
        assert a.hpwl == pytest.approx(b.hpwl, rel=1e-12)
        np.testing.assert_allclose(a.x, b.x)

    def test_adam_optimizer_also_converges(self, netlist):
        params = PlacementParams(optimizer="adam", max_iterations=500)
        result = XPlacer(netlist, params).run()
        assert result.overflow < 0.3  # Adam spreads, if less efficiently

    def test_early_stage_ratio_small(self, xplace_result):
        """Validates the §3.1.4 premise on a real run: r << 1 early."""
        ratios = xplace_result.recorder.trace("grad_ratio")
        assert np.nanmedian(ratios[:10]) < 0.01

    def test_skipping_happened(self, xplace_result):
        assert xplace_result.recorder.density_skip_count() > 0


class TestAblationsStillConverge:
    @pytest.mark.parametrize(
        "flag",
        [
            "combined_wirelength",
            "density_extraction",
            "operator_skipping",
            "stage_aware_schedule",
        ],
    )
    def test_each_technique_off(self, netlist, flag):
        kwargs = {flag: False, "max_iterations": 500}
        result = XPlacer(netlist, PlacementParams(**kwargs)).run()
        assert result.overflow < 0.10

    def test_ablations_equal_quality_direction(self, netlist, xplace_result):
        """Techniques are speed optimizations: turning OC/OE off must not
        change the HPWL trajectory (identical math)."""
        params = PlacementParams(
            combined_wirelength=False,
            density_extraction=False,
            max_iterations=500,
        )
        result = XPlacer(netlist, params).run()
        assert result.hpwl == pytest.approx(xplace_result.hpwl, rel=1e-6)


class TestBaseline:
    @pytest.fixture(scope="class")
    def baseline_result(self, netlist):
        return DreamPlaceStyleBaseline(
            netlist, PlacementParams(max_iterations=500)
        ).run()

    def test_converges(self, baseline_result):
        assert baseline_result.overflow < 0.10

    def test_quality_comparable_to_xplace(self, baseline_result, xplace_result):
        # Same math: HPWL within a few percent of each other.
        assert baseline_result.hpwl == pytest.approx(xplace_result.hpwl, rel=0.05)

    def test_xplace_faster_per_iteration(self, netlist, baseline_result,
                                         xplace_result):
        per_iter_x = xplace_result.gp_seconds / xplace_result.iterations
        per_iter_b = baseline_result.gp_seconds / baseline_result.iterations
        assert per_iter_b > per_iter_x

    def test_baseline_never_skips_density(self, baseline_result):
        assert baseline_result.recorder.density_skip_count() == 0
