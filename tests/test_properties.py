"""Cross-cutting property-based tests (hypothesis) on random circuits.

These tests draw whole random circuits and placements, exercising
invariants no example-based test pins down: conservation laws, bounds,
idempotence, adjointness, round-trips.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.benchgen import CircuitSpec, generate_circuit
from repro.bookshelf import read_bookshelf, write_bookshelf
from repro.density import BinGrid, DensityScatter, ElectrostaticSolver
from repro.legalize import AbacusLegalizer, TetrisLegalizer, check_legal
from repro.netlist import PlacementRegion
from repro.wirelength import WirelengthOp, hpwl, lse_wirelength

_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def circuits(draw):
    """Small random circuits with varied shape parameters."""
    cells = draw(st.integers(30, 150))
    macros = draw(st.integers(0, 3))
    util = draw(st.floats(0.3, 0.7))
    locality = draw(st.floats(0.4, 0.9))
    seed = draw(st.integers(0, 10_000))
    return generate_circuit(
        CircuitSpec(
            f"h{seed}",
            num_cells=cells,
            num_macros=macros,
            macro_fraction=0.1 if macros else 0.0,
            utilization=util,
            locality=locality,
            num_pads=8,
            seed=seed,
        )
    )


def _random_placement(netlist, seed=0):
    rng = np.random.default_rng(seed)
    region = netlist.region
    x = np.where(np.isnan(netlist.fixed_x), 0.0, netlist.fixed_x).copy()
    y = np.where(np.isnan(netlist.fixed_y), 0.0, netlist.fixed_y).copy()
    mov = netlist.movable_index
    x[mov] = rng.uniform(region.xl, region.xh, len(mov))
    y[mov] = rng.uniform(region.yl, region.yh, len(mov))
    return x, y


class TestWirelengthProperties:
    @given(circuits(), st.floats(0.5, 8.0))
    @settings(**_SETTINGS)
    def test_wa_hpwl_lse_sandwich(self, netlist, gamma):
        x, y = _random_placement(netlist)
        wa = WirelengthOp(netlist)(x, y, gamma)
        lse = lse_wirelength(netlist, x, y, gamma)
        assert wa.wa <= wa.hpwl + 1e-6
        assert wa.hpwl <= lse + 1e-6

    @given(circuits(), st.floats(-200, 200), st.floats(-200, 200))
    @settings(**_SETTINGS)
    def test_hpwl_translation_invariant(self, netlist, dx, dy):
        x, y = _random_placement(netlist)
        assert hpwl(netlist, x + dx, y + dy) == pytest.approx(
            hpwl(netlist, x, y), rel=1e-9, abs=1e-6
        )

    @given(circuits(), st.floats(1.1, 4.0))
    @settings(**_SETTINGS)
    def test_hpwl_scales_linearly(self, netlist, factor):
        """Scaling positions *and* pin offsets scales HPWL linearly (a
        placement-independent property of the metric)."""
        import dataclasses

        scaled = dataclasses.replace(
            netlist,
            pin_dx=netlist.pin_dx * factor,
            pin_dy=netlist.pin_dy * factor,
        )
        x, y = _random_placement(netlist)
        assert hpwl(scaled, x * factor, y * factor) == pytest.approx(
            factor * hpwl(netlist, x, y), rel=1e-9
        )

    @given(circuits())
    @settings(**_SETTINGS)
    def test_wa_gradient_sums_to_zero(self, netlist):
        x, y = _random_placement(netlist)
        result = WirelengthOp(netlist)(x, y, 2.0)
        assert abs(result.grad_x.sum()) < 1e-6
        assert abs(result.grad_y.sum()) < 1e-6


class TestDensityProperties:
    @given(st.integers(0, 5000), st.integers(8, 32))
    @settings(**_SETTINGS)
    def test_scatter_never_creates_area(self, seed, m):
        rng = np.random.default_rng(seed)
        grid = BinGrid(PlacementRegion(0, 0, 100, 100), m)
        n = 25
        x = rng.uniform(-10, 110, n)   # some cells off-die
        y = rng.uniform(-10, 110, n)
        w = rng.uniform(0.2, 15, n)
        h = rng.uniform(0.2, 15, n)
        density = DensityScatter(grid).scatter(x, y, w, h)
        assert density.min() >= 0
        assert density.sum() <= np.sum(w * h) + 1e-6

    @given(st.integers(0, 5000))
    @settings(**_SETTINGS)
    def test_solver_linearity(self, seed):
        rng = np.random.default_rng(seed)
        grid = BinGrid(PlacementRegion(0, 0, 32, 32), 16)
        solver = ElectrostaticSolver(grid)
        a = rng.uniform(0, 1, grid.shape)
        b = rng.uniform(0, 1, grid.shape)
        alpha = float(rng.uniform(0.5, 3.0))
        combined = solver.solve(a + alpha * b)
        fa = solver.solve(a)
        fb = solver.solve(b)
        np.testing.assert_allclose(
            combined.field_x, fa.field_x + alpha * fb.field_x, atol=1e-9
        )

    @given(st.integers(0, 5000))
    @settings(**_SETTINGS)
    def test_solver_mean_invariance(self, seed):
        """Adding a constant to the density changes nothing (the DC mode
        is projected out)."""
        rng = np.random.default_rng(seed)
        grid = BinGrid(PlacementRegion(0, 0, 32, 32), 16)
        solver = ElectrostaticSolver(grid)
        rho = rng.uniform(0, 1, grid.shape)
        base = solver.solve(rho)
        shifted = solver.solve(rho + 5.0)
        np.testing.assert_allclose(shifted.potential, base.potential, atol=1e-9)
        np.testing.assert_allclose(shifted.field_x, base.field_x, atol=1e-9)


class TestLegalizationProperties:
    @given(circuits(), st.integers(0, 100))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_abacus_legalizes_any_placement(self, netlist, seed):
        x, y = _random_placement(netlist, seed)
        lx, ly = AbacusLegalizer(netlist).legalize(x, y)
        assert check_legal(netlist, lx, ly).legal

    @given(circuits(), st.integers(0, 100))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_tetris_legalizes_any_placement(self, netlist, seed):
        x, y = _random_placement(netlist, seed)
        lx, ly = TetrisLegalizer(netlist).legalize(x, y)
        assert check_legal(netlist, lx, ly).legal

    @given(circuits())
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_legalization_idempotent(self, netlist):
        """Legalizing a legal placement must not move cells (much)."""
        x, y = _random_placement(netlist, 7)
        legalizer = AbacusLegalizer(netlist)
        lx, ly = legalizer.legalize(x, y)
        lx2, ly2 = legalizer.legalize(lx, ly)
        mov = netlist.movable_index
        disp = np.abs(lx2[mov] - lx[mov]) + np.abs(ly2[mov] - ly[mov])
        avg_w = float(np.mean(netlist.cell_w[mov]))
        assert np.mean(disp) < 2 * avg_w


class TestBookshelfProperties:
    @given(netlist=circuits())
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_roundtrip_preserves_hpwl(self, netlist):
        import tempfile

        directory = tempfile.mkdtemp(prefix="bsf_prop_")
        x, y = _random_placement(netlist, 3)
        aux = write_bookshelf(netlist, str(directory), x=x, y=y)
        loaded = read_bookshelf(aux)
        lx, ly = loaded.initial_positions()
        assert hpwl(loaded, lx, ly) == pytest.approx(
            hpwl(netlist, x, y), rel=1e-4
        )
