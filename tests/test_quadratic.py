"""Tests for the quadratic placer substrate (B2B + CG + grid warp)."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.netlist import NetlistBuilder, PlacementRegion
from repro.quadratic import B2BSystem, QuadraticPlacer, grid_warp
from repro.wirelength import hpwl


@pytest.fixture(scope="module")
def circuit():
    return generate_circuit(
        CircuitSpec("quad", num_cells=250, num_macros=0, num_pads=16)
    )


class TestB2B:
    def test_reweighting_converges_to_weighted_hpwl_optimum(self):
        """A cell pulled by nets of weight 3 (left pad) and 1 (right pad)
        has weighted HPWL 3x + (100 − x): optimum at the left pad.  The
        iterated B2B linearisation must converge there."""
        builder = NetlistBuilder()
        builder.set_region(PlacementRegion.with_uniform_rows(0, 0, 100, 20, 10))
        builder.add_cell("m", 2, 10)
        builder.add_cell("l", 0, 0, movable=False, x=0.0, y=5.0)
        builder.add_cell("r", 0, 0, movable=False, x=100.0, y=5.0)
        builder.add_net("a", [("m", 0, 0), ("l", 0, 0)], weight=3.0)
        builder.add_net("b", [("m", 0, 0), ("r", 0, 0)], weight=1.0)
        nl = builder.build()
        system = B2BSystem(nl)
        x = np.array([20.0, 0.0, 100.0])
        for __ in range(30):
            x[0] = system.solve(x, nl.pin_dx)[0]
        assert x[0] < 2.0

    def test_balanced_two_pin_nets_are_stationary(self):
        """Between equal pads HPWL is constant in x, so the linearised
        solve must not move the cell (B2B matches HPWL's flat gradient)."""
        builder = NetlistBuilder()
        builder.set_region(PlacementRegion.with_uniform_rows(0, 0, 100, 20, 10))
        builder.add_cell("m", 2, 10)
        builder.add_cell("l", 0, 0, movable=False, x=0.0, y=5.0)
        builder.add_cell("r", 0, 0, movable=False, x=100.0, y=5.0)
        builder.add_net("a", [("m", 0, 0), ("l", 0, 0)])
        builder.add_net("b", [("m", 0, 0), ("r", 0, 0)])
        nl = builder.build()
        system = B2BSystem(nl)
        x = np.array([20.0, 0.0, 100.0])
        moved = system.solve(x, nl.pin_dx)[0]
        assert moved == pytest.approx(20.0, abs=1e-6)

    def test_quadratic_energy_matches_hpwl_at_linearization(self, circuit):
        """At the linearisation point, Σ w_ij (x_i − x_j)² = HPWL_x for
        2-pin nets (the defining property of B2B)."""
        builder = NetlistBuilder()
        builder.set_region(PlacementRegion.with_uniform_rows(0, 0, 100, 20, 10))
        builder.add_cell("a", 2, 10)
        builder.add_cell("b", 2, 10)
        builder.add_cell("p", 0, 0, movable=False, x=0.0, y=5.0)
        builder.add_net("n1", [("a", 0, 0), ("b", 0, 0)])
        builder.add_net("n2", [("a", 0, 0), ("p", 0, 0)])
        nl = builder.build()
        x = np.array([30.0, 70.0, 0.0])
        y = np.array([5.0, 5.0, 5.0])
        system = B2BSystem(nl, epsilon=1e-12)
        matrix, rhs = system.build(x, nl.pin_dx)
        xm = x[:2]
        energy = float(xm @ (matrix @ xm) - 2 * rhs @ xm)
        # Add fixed-fixed constant terms: only net n2's fixed end at 0.
        # Energy expression omits constants; compare via derivative-free
        # identity instead: w*(dx)^2 per net = |dx| when w=1/|dx|.
        expected = abs(x[0] - x[1]) + abs(x[0] - x[2])
        # Σw(xi−xj)² over edges (constant terms included by expansion).
        w1 = 2.0 / 1.0 / abs(x[0] - x[1])
        w2 = 2.0 / 1.0 / abs(x[0] - x[2])
        direct = 0.5 * w1 * (x[0] - x[1]) ** 2 + 0.5 * w2 * (x[0] - x[2]) ** 2
        assert direct == pytest.approx(expected)

    def test_solver_reduces_wirelength(self, circuit):
        rng = np.random.default_rng(0)
        region = circuit.region
        x = rng.uniform(region.xl, region.xh, circuit.num_cells)
        y = rng.uniform(region.yl, region.yh, circuit.num_cells)
        before = hpwl(circuit, x, y)
        system = B2BSystem(circuit)
        mov = circuit.movable_index
        for __ in range(3):
            x[mov] = system.solve(x, circuit.pin_dx)
            y[mov] = system.solve(y, circuit.pin_dy)
        after = hpwl(circuit, x, y)
        assert after < 0.7 * before

    def test_anchor_pulls_solution(self, circuit):
        rng = np.random.default_rng(1)
        region = circuit.region
        x = rng.uniform(region.xl, region.xh, circuit.num_cells)
        system = B2BSystem(circuit)
        mov = circuit.movable_index
        free = system.solve(x, circuit.pin_dx)
        anchor = np.full(len(mov), region.xh)
        pulled = system.solve(x, circuit.pin_dx, anchor=anchor,
                              anchor_weight=10.0)
        assert pulled.mean() > free.mean()


class TestGridWarp:
    def test_spreads_clustered_cells(self, circuit):
        rng = np.random.default_rng(0)
        region = circuit.region
        # A tight Gaussian cluster (a point mass cannot be warped: the
        # map acts on positions, and identical positions map together).
        x = region.center[0] + rng.normal(0, 0.02 * region.width,
                                          circuit.num_cells)
        y = region.center[1] + rng.normal(0, 0.02 * region.height,
                                          circuit.num_cells)
        mov = circuit.movable_index
        wx, wy = x, y
        for __ in range(4):
            wx, wy = grid_warp(circuit, wx, wy, strength=1.0)
        assert np.std(wx[mov]) > 3 * np.std(x[mov])
        assert np.std(wy[mov]) > 3 * np.std(y[mov])

    def test_strength_zero_is_identity_for_positions(self, circuit):
        rng = np.random.default_rng(2)
        region = circuit.region
        x = rng.uniform(region.xl + 10, region.xh - 10, circuit.num_cells)
        y = rng.uniform(region.yl + 10, region.yh - 10, circuit.num_cells)
        wx, wy = grid_warp(circuit, x, y, strength=0.0)
        mov = circuit.movable_index
        np.testing.assert_allclose(wx[mov], x[mov], atol=1e-9)

    def test_preserves_order_along_axis(self, circuit):
        """The cumulative warp is monotone: x-order within a slab holds."""
        rng = np.random.default_rng(3)
        region = circuit.region
        x = rng.uniform(region.xl, region.xh, circuit.num_cells)
        y = np.full(circuit.num_cells, region.center[1])  # single slab
        wx, __ = grid_warp(circuit, x, y, strength=1.0, slabs=1)
        mov = circuit.movable_index
        # The warp itself is monotone; only the final per-cell die clamp
        # (half-width dependent) may reorder cells touching the edges, so
        # check interior cells only.
        margin = float(circuit.cell_w[mov].max())
        region = circuit.region
        interior = (wx[mov] > region.xl + margin) & (wx[mov] < region.xh - margin)
        xs = x[mov][interior]
        ws = wx[mov][interior]
        order = np.argsort(xs)
        assert np.all(np.diff(ws[order]) >= -1e-9)

    def test_fixed_cells_untouched(self, circuit):
        rng = np.random.default_rng(4)
        region = circuit.region
        x = rng.uniform(region.xl, region.xh, circuit.num_cells)
        y = rng.uniform(region.yl, region.yh, circuit.num_cells)
        wx, wy = grid_warp(circuit, x, y)
        fixed = ~circuit.movable
        np.testing.assert_array_equal(wx[fixed], x[fixed])


class TestQuadraticPlacer:
    @pytest.fixture(scope="class")
    def result(self, circuit):
        return QuadraticPlacer(circuit, seed=0).run()

    def test_produces_reasonable_placement(self, circuit, result):
        # Better than random, spread enough for legalization.
        rng = np.random.default_rng(5)
        region = circuit.region
        x = result.x.copy()
        y = result.y.copy()
        mov = circuit.movable_index
        x[mov] = rng.uniform(region.xl, region.xh, len(mov))
        y[mov] = rng.uniform(region.yl, region.yh, len(mov))
        assert result.hpwl < hpwl(circuit, x, y)
        assert result.overflow < 0.6

    def test_legalizable(self, circuit, result):
        from repro.legalize import AbacusLegalizer, check_legal

        lx, ly = AbacusLegalizer(circuit).legalize(result.x, result.y)
        assert check_legal(circuit, lx, ly).legal

    def test_intro_claim_nonlinear_beats_quadratic(self, circuit, result):
        """The paper's Section 1 claim: non-linear placers (Xplace)
        produce higher solution quality than quadratic placers."""
        from repro.core import PlacementParams, XPlacer

        nonlinear = XPlacer(circuit, PlacementParams(max_iterations=500)).run()
        assert nonlinear.hpwl < result.hpwl
        assert nonlinear.overflow < result.overflow + 0.05

    def test_deterministic(self, circuit, result):
        again = QuadraticPlacer(circuit, seed=0).run()
        assert again.hpwl == pytest.approx(result.hpwl, rel=1e-9)

    def test_recorder_traces(self, result):
        assert len(result.recorder) == result.iterations
        overflow = result.recorder.trace("overflow")
        assert overflow[-1] <= overflow[0]
