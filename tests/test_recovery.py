"""Checkpoint/rollback recovery: monitor, manager, and the GP loop.

The integration tests run the real :class:`XPlacer` on a tiny circuit —
recovery's contract is about the *loop*, so a fake pipeline cannot
stand in.  Fault injection rides the iteration-callback seam
(:mod:`repro.faults`) exactly as the chaos harness does.
"""

import math
import os

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams, XPlacer
from repro.faults import FaultCallback, FaultSpec, InjectedFault
from repro.recovery import CheckpointManager, DivergenceMonitor, LoopSnapshot
from repro.recovery.checkpoint import SNAPSHOT_SCHEMA_VERSION


@pytest.fixture(scope="module")
def netlist():
    return generate_circuit(
        CircuitSpec("recovery", num_cells=150, num_macros=0, num_pads=8)
    )


def run_placer(netlist, checkpoint_dir=None, resume=False, callbacks=None,
               **overrides):
    params = PlacementParams(max_iterations=60, checkpoint_every=10,
                             **overrides)
    return XPlacer(netlist, params).run(
        callbacks=callbacks, checkpoint_dir=checkpoint_dir, resume=resume
    )


class TestDivergenceMonitor:
    def test_normal_growth_does_not_trip(self):
        monitor = DivergenceMonitor(hpwl_factor=50.0)
        # HPWL legitimately grows several-fold during spreading.
        assert monitor.feed(0, 100.0, 0.9) is None
        assert monitor.feed(1, 800.0, 0.8) is None
        assert not monitor.tripped

    def test_explosion_trips(self):
        monitor = DivergenceMonitor(hpwl_factor=50.0)
        monitor.feed(0, 100.0, 0.9)
        reason = monitor.feed(1, 100.0 * 51, 0.9)
        assert reason is not None and "hpwl-explosion" in reason
        assert monitor.tripped

    def test_non_finite_hpwl_trips(self):
        monitor = DivergenceMonitor()
        monitor.feed(0, 100.0, 0.9)
        assert monitor.feed(1, float("nan"), 0.9) == "non-finite-hpwl"

    def test_single_iteration_never_trips_against_itself(self):
        monitor = DivergenceMonitor(hpwl_factor=2.0)
        assert monitor.feed(0, 1e12, 0.9) is None

    def test_plateau_requires_opt_in(self):
        monitor = DivergenceMonitor()  # plateau_window=0 → disabled
        for i in range(200):
            assert monitor.feed(i, 100.0, 0.9) is None

    def test_plateau_trips_when_armed(self):
        monitor = DivergenceMonitor(plateau_window=5, plateau_overflow=0.25)
        monitor.feed(0, 100.0, 0.9)
        for i in range(1, 5):
            assert monitor.feed(i, 100.0, 0.9) is None
        reason = monitor.feed(5, 100.0, 0.9)
        assert reason is not None and "overflow-plateau" in reason

    def test_plateau_clock_resets_on_improvement(self):
        monitor = DivergenceMonitor(plateau_window=5)
        overflow = 0.9
        for i in range(20):
            overflow *= 0.99  # always improving → never trips
            assert monitor.feed(i, 100.0, overflow) is None

    def test_rewind_clears_the_trip(self):
        monitor = DivergenceMonitor(hpwl_factor=2.0, plateau_window=3)
        monitor.feed(0, 100.0, 0.9)
        monitor.feed(1, 500.0, 0.9)
        assert monitor.tripped
        monitor.rewind(best_hpwl=100.0, best_iteration=0, iteration=1)
        assert not monitor.tripped
        assert monitor.best_hpwl == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DivergenceMonitor(hpwl_factor=1.0)
        with pytest.raises(ValueError):
            DivergenceMonitor(plateau_window=-1)


def make_snapshot(iteration, hpwl=100.0, overflow=0.5):
    return LoopSnapshot(
        iteration=iteration,
        lam=1e-3,
        hpwl=hpwl,
        overflow=overflow,
        best_hpwl=hpwl,
        best_iteration=iteration,
        optimizer={"pos_x": np.arange(4.0), "alpha": 1.5, "epoch": iteration},
        scheduler={"gamma": 80.0, "lam": 1e-3},
        engine={"cached": False, "skip_last_ratio": 0.0},
    )


class TestCheckpointManager:
    def test_ring_evicts_oldest(self):
        manager = CheckpointManager(keep=2)
        for i in (10, 20, 30):
            manager.save(make_snapshot(i))
        assert len(manager) == 2
        assert manager.latest().iteration == 30
        assert manager.saved == 3

    def test_best_pinned_beyond_the_ring(self):
        manager = CheckpointManager(keep=1)
        manager.save(make_snapshot(10, hpwl=50.0, overflow=0.1))  # the best
        manager.save(make_snapshot(20, hpwl=90.0, overflow=0.8))
        manager.save(make_snapshot(30, hpwl=95.0, overflow=0.9))
        assert manager.latest().iteration == 30
        assert manager.best().iteration == 10

    def test_quality_orders_overflow_first(self):
        spread = make_snapshot(1, hpwl=200.0, overflow=0.1)
        clumped = make_snapshot(2, hpwl=100.0, overflow=0.9)
        assert spread.quality() < clumped.quality()

    def test_spill_round_trip(self, tmp_path):
        spill = str(tmp_path / "ckpt")
        manager = CheckpointManager(keep=2, spill_dir=spill)
        manager.save(make_snapshot(25))
        loaded = CheckpointManager(spill_dir=spill).load_spilled()
        assert loaded is not None
        assert loaded.iteration == 25
        assert loaded.lam == pytest.approx(1e-3)
        np.testing.assert_array_equal(loaded.optimizer["pos_x"],
                                      np.arange(4.0))
        assert loaded.optimizer["alpha"] == 1.5
        assert loaded.optimizer["epoch"] == 25
        assert loaded.scheduler["gamma"] == 80.0
        assert loaded.engine["cached"] is False

    def test_missing_spill_is_none(self, tmp_path):
        manager = CheckpointManager(spill_dir=str(tmp_path / "nothing"))
        assert manager.load_spilled() is None

    def test_corrupt_spill_removed_and_treated_as_absent(self, tmp_path):
        spill = str(tmp_path / "ckpt")
        manager = CheckpointManager(spill_dir=spill)
        manager.save(make_snapshot(25))
        with open(os.path.join(spill, "checkpoint.json"), "w") as fh:
            fh.write("{broken")
        assert manager.load_spilled() is None
        assert not os.path.exists(os.path.join(spill, "checkpoint.json"))

    def test_stale_schema_is_absent(self, tmp_path):
        spill = str(tmp_path / "ckpt")
        manager = CheckpointManager(spill_dir=spill)
        manager.save(make_snapshot(25))
        meta = os.path.join(spill, "checkpoint.json")
        text = open(meta).read().replace(
            f'"schema": {SNAPSHOT_SCHEMA_VERSION}', '"schema": -1'
        )
        with open(meta, "w") as fh:
            fh.write(text)
        assert manager.load_spilled() is None

    def test_clear_spill(self, tmp_path):
        spill = str(tmp_path / "ckpt")
        manager = CheckpointManager(spill_dir=spill)
        manager.save(make_snapshot(25))
        manager.clear_spill()
        assert manager.load_spilled() is None

    def test_adopt_does_not_respill_or_count(self, tmp_path):
        spill = str(tmp_path / "ckpt")
        manager = CheckpointManager(spill_dir=spill)
        manager.adopt(make_snapshot(25))
        assert manager.latest().iteration == 25
        assert manager.saved == 0
        assert not os.path.exists(os.path.join(spill, "checkpoint.json"))


class TestRecoveryLoop:
    def test_observation_only_is_bit_identical(self, netlist):
        """Checkpointing with no faults must not change the trajectory."""
        plain = XPlacer(netlist, PlacementParams(max_iterations=60)).run()
        recov = run_placer(netlist)
        assert recov.checkpoints > 0
        assert recov.rollbacks == 0
        assert np.array_equal(plain.x, recov.x)
        assert np.array_equal(plain.y, recov.y)
        assert plain.hpwl == recov.hpwl

    def test_nan_late_in_the_run_recovers(self, netlist):
        """A NaN at ~80% progress rolls back and lands within 5%."""
        clean = run_placer(netlist)
        fault_at = int(clean.iterations * 0.8)
        faults = FaultCallback([FaultSpec("nan-grad", iteration=fault_at)])
        result = run_placer(netlist, callbacks=[faults])
        assert len(faults.fired) == 1
        assert result.rollbacks >= 1
        assert not result.degraded
        assert math.isfinite(result.hpwl)
        assert result.hpwl <= clean.hpwl * 1.05

    def test_nan_without_recovery_still_raises(self, netlist):
        from repro.analysis.sanitizer import NumericalFault

        faults = FaultCallback([FaultSpec("nan-grad", iteration=20)])
        with pytest.raises(NumericalFault):
            XPlacer(netlist, PlacementParams(max_iterations=60)).run(
                callbacks=[faults]
            )

    def test_zero_budget_degrades_to_best_seen(self, netlist):
        faults = FaultCallback([FaultSpec("nan-grad", iteration=30)])
        result = run_placer(netlist, callbacks=[faults], rollback_budget=0)
        assert result.degraded
        assert result.rollbacks == 0
        assert math.isfinite(result.hpwl)

    def test_recovery_is_deterministic(self, netlist):
        runs = []
        for _ in range(2):
            faults = FaultCallback([FaultSpec("nan-grad", iteration=30)])
            runs.append(run_placer(netlist, callbacks=[faults]))
        assert runs[0].rollbacks == runs[1].rollbacks == 1
        assert np.array_equal(runs[0].x, runs[1].x)
        assert runs[0].hpwl == runs[1].hpwl

    def test_killed_run_resumes_bit_for_bit(self, netlist, tmp_path):
        """abort ≈ SIGKILL: the resumed run must match an unkilled one."""
        spill = str(tmp_path / "ckpt")
        clean = run_placer(netlist)
        faults = FaultCallback([FaultSpec("abort", iteration=35)])
        with pytest.raises(InjectedFault):
            run_placer(netlist, checkpoint_dir=spill, callbacks=[faults])
        # The kill left a spilled checkpoint behind...
        assert os.path.exists(os.path.join(spill, "checkpoint.json"))
        resumed = run_placer(netlist, checkpoint_dir=spill, resume=True)
        assert resumed.resumed_from == 30  # last cadence-10 checkpoint
        assert np.array_equal(clean.x, resumed.x)
        assert np.array_equal(clean.y, resumed.y)
        assert clean.hpwl == resumed.hpwl
        # ...and a successful finish clears it.
        assert not os.path.exists(os.path.join(spill, "checkpoint.json"))

    def test_checkpoint_dir_arms_recovery_without_params(self, netlist,
                                                         tmp_path):
        result = XPlacer(netlist, PlacementParams(max_iterations=60)).run(
            checkpoint_dir=str(tmp_path / "ckpt")
        )
        assert result.checkpoints > 0  # default cadence kicked in


class TestParamsValidation:
    def test_recovery_enabled_property(self):
        assert not PlacementParams().recovery_enabled
        assert PlacementParams(checkpoint_every=10).recovery_enabled

    @pytest.mark.parametrize("field, bad", [
        ("checkpoint_every", -1),
        ("checkpoint_keep", 0),
        ("rollback_budget", -1),
        ("rollback_step_cut", 0.0),
        ("rollback_step_cut", 1.5),
        ("rollback_perturb", -0.1),
        ("divergence_hpwl_factor", 1.0),
        ("divergence_plateau_window", -1),
    ])
    def test_bad_recovery_knobs_rejected(self, field, bad):
        with pytest.raises(ValueError):
            PlacementParams(**{field: bad})
