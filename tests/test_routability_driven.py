"""Tests for routability-driven placement (congestion-based inflation)."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams
from repro.route import GlobalRouter, RoutabilityDrivenPlacer, netlist_with_sizes


@pytest.fixture(scope="module")
def netlist():
    # Moderate utilisation so inflation has whitespace to spend.
    return generate_circuit(
        CircuitSpec("rd", num_cells=400, utilization=0.5, num_macros=0)
    )


class TestNetlistWithSizes:
    def test_sizes_overridden_connectivity_shared(self, netlist):
        inflated = netlist_with_sizes(netlist, netlist.cell_w * 2.0)
        np.testing.assert_allclose(inflated.cell_w, netlist.cell_w * 2)
        assert inflated.pin2cell is netlist.pin2cell
        assert inflated.num_nets == netlist.num_nets

    def test_original_untouched(self, netlist):
        before = netlist.cell_w.copy()
        netlist_with_sizes(netlist, netlist.cell_w * 3.0)
        np.testing.assert_array_equal(netlist.cell_w, before)


class TestRoutabilityDriven:
    @pytest.fixture(scope="class")
    def result(self, netlist):
        placer = RoutabilityDrivenPlacer(
            netlist,
            PlacementParams(max_iterations=400),
            rounds=3,
            route_grid_m=16,
        )
        return placer.run()

    def test_runs_rounds_and_keeps_best(self, result):
        assert 1 <= len(result.rounds) <= 3
        best = result.rounds[result.best_round]
        assert result.top5_overflow == pytest.approx(best.top5_overflow)
        # Best is no worse than every recorded round.
        assert all(
            result.top5_overflow <= r.top5_overflow + 1e-9 for r in result.rounds
        )

    def test_result_positions_are_finite(self, netlist, result):
        mov = netlist.movable_index
        assert np.all(np.isfinite(result.x[mov]))
        assert np.all(np.isfinite(result.y[mov]))

    def test_routability_not_worse_than_plain_gp(self, netlist, result):
        from repro.core import XPlacer

        plain = XPlacer(netlist, PlacementParams(max_iterations=400)).run()
        routing = GlobalRouter(netlist, grid_m=16).route(plain.x, plain.y)
        assert result.top5_overflow <= routing.top5_overflow + 1e-9

    def test_inflation_respects_area_budget(self, netlist):
        placer = RoutabilityDrivenPlacer(netlist, PlacementParams())
        congestion = np.full(netlist.num_cells, 5.0)  # everything "hot"
        inflation = placer._next_inflation(
            np.ones(netlist.num_cells), congestion
        )
        movable = netlist.movable
        fixed_area = float(np.sum(netlist.cell_area[~movable]))
        free = netlist.region.area - fixed_area
        budget = 0.95 * placer.params.target_density * free
        inflated_area = float(
            np.sum(netlist.cell_area[movable] * inflation[movable])
        )
        assert inflated_area <= budget + 1e-6

    def test_cold_map_no_inflation(self, netlist):
        placer = RoutabilityDrivenPlacer(netlist, PlacementParams())
        congestion = np.ones(netlist.num_cells) * 0.5  # under capacity
        inflation = placer._next_inflation(
            np.ones(netlist.num_cells), congestion
        )
        np.testing.assert_allclose(inflation, 1.0)

    def test_fixed_cells_never_inflated(self, netlist):
        placer = RoutabilityDrivenPlacer(netlist, PlacementParams())
        congestion = np.full(netlist.num_cells, 3.0)
        inflation = placer._next_inflation(
            np.ones(netlist.num_cells), congestion
        )
        fixed = ~netlist.movable
        np.testing.assert_allclose(inflation[fixed], 1.0)
