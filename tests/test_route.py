"""Tests for the routing grid, net decomposition and pattern router."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams, XPlacer
from repro.netlist import PlacementRegion
from repro.route import GlobalRouter, RoutingGrid, decompose_net


@pytest.fixture
def grid():
    return RoutingGrid(PlacementRegion(0, 0, 64, 64), m=8, h_capacity=2,
                       v_capacity=2)


class TestRoutingGrid:
    def test_geometry(self, grid):
        assert grid.gcell_w == 8.0
        assert grid.h_demand.shape == (7, 8)
        assert grid.v_demand.shape == (8, 7)

    def test_gcell_of_clamps(self, grid):
        i, j = grid.gcell_of(np.array([-1.0, 100.0]), np.array([5.0, 5.0]))
        assert i.tolist() == [0, 7]

    def test_demand_accumulation(self, grid):
        grid.add_horizontal(1, 4, 2)
        assert grid.h_demand[1:4, 2].tolist() == [1, 1, 1]
        grid.add_horizontal(4, 1, 2)  # reversed endpoints, same edges
        assert grid.h_demand[1:4, 2].tolist() == [2, 2, 2]

    def test_overflow_map_and_top5(self, grid):
        grid.add_horizontal(0, 1, 0, amount=5.0)  # capacity 2 → overflow 3
        over = grid.overflow_map()
        assert over[0, 0] == pytest.approx(1.5)  # 3 split across 2 endpoints
        assert over[1, 0] == pytest.approx(1.5)
        assert grid.total_overflow() == pytest.approx(3.0)
        assert grid.top_overflow(0.05) > 0

    def test_path_cost_prefers_empty_corner(self, grid):
        # Congest the hv corner heavily.
        grid.add_horizontal(0, 4, 0, amount=10.0)
        assert grid.path_cost(0, 0, 4, 4, "vh") < grid.path_cost(0, 0, 4, 4, "hv")

    def test_wirelength_units(self, grid):
        grid.add_horizontal(0, 2, 0)
        assert grid.wirelength() == pytest.approx(2 * grid.gcell_w)

    def test_reset(self, grid):
        grid.add_vertical(0, 0, 3)
        grid.reset()
        assert grid.v_demand.sum() == 0

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            RoutingGrid(PlacementRegion(0, 0, 10, 10), m=1)


class TestDecompose:
    def test_two_pin(self):
        edges = decompose_net(np.array([1, 5]), np.array([2, 7]))
        assert edges == [((1, 2), (5, 7))]

    def test_collapses_duplicates(self):
        edges = decompose_net(np.array([1, 1, 5]), np.array([2, 2, 2]))
        assert len(edges) == 1

    def test_single_gcell_net(self):
        assert decompose_net(np.array([3, 3]), np.array([4, 4])) == []

    def test_mst_edge_count(self):
        rng = np.random.default_rng(0)
        xs = rng.integers(0, 30, 12)
        ys = rng.integers(0, 30, 12)
        unique = np.unique(np.stack([xs, ys], axis=1), axis=0)
        edges = decompose_net(xs, ys)
        assert len(edges) == len(unique) - 1

    def test_mst_total_length_minimal_for_collinear(self):
        # Collinear points: MST length equals the span.
        xs = np.array([0, 10, 4, 7])
        ys = np.zeros(4, dtype=int)
        edges = decompose_net(xs, ys)
        total = sum(abs(a[0] - b[0]) + abs(a[1] - b[1]) for a, b in edges)
        assert total == 10


class TestGlobalRouter:
    @pytest.fixture(scope="class")
    def placed(self):
        nl = generate_circuit(
            CircuitSpec("gr", num_cells=300, num_macros=0, num_pads=16)
        )
        result = XPlacer(nl, PlacementParams(max_iterations=400)).run()
        return nl, result

    def test_routes_all_decomposed_edges(self, placed):
        nl, result = placed
        r = GlobalRouter(nl, grid_m=16).route(result.x, result.y)
        assert r.num_edges > 0
        assert r.wirelength > 0
        assert r.top5_overflow >= 0

    def test_placed_beats_random(self, placed):
        nl, result = placed
        router = GlobalRouter(nl, grid_m=16)
        placed_r = router.route(result.x, result.y)
        rng = np.random.default_rng(0)
        region = nl.region
        x = result.x.copy()
        y = result.y.copy()
        mov = nl.movable_index
        x[mov] = rng.uniform(region.xl, region.xh, len(mov))
        y[mov] = rng.uniform(region.yl, region.yh, len(mov))
        random_r = GlobalRouter(nl, grid_m=16).route(x, y)
        assert placed_r.wirelength < random_r.wirelength
        assert placed_r.top5_overflow <= random_r.top5_overflow

    def test_rrr_reduces_overflow(self, placed):
        nl, result = placed
        no_rrr = GlobalRouter(nl, grid_m=16, rrr_passes=0).route(
            result.x, result.y
        )
        with_rrr = GlobalRouter(nl, grid_m=16, rrr_passes=2).route(
            result.x, result.y
        )
        assert with_rrr.total_overflow <= no_rrr.total_overflow

    def test_routed_wirelength_lower_bounded_by_hpwl_fraction(self, placed):
        """Routed WL ≥ HPWL of the g-cell-snapped terminals (MST ≥ HPWL/...);
        sanity: routed length is the same order as HPWL."""
        from repro.wirelength import hpwl

        nl, result = placed
        r = GlobalRouter(nl, grid_m=16).route(result.x, result.y)
        exact = hpwl(nl, result.x, result.y)
        assert r.wirelength > 0.2 * exact
        assert r.wirelength < 10 * exact

    def test_explicit_capacity_respected(self, placed):
        nl, result = placed
        router = GlobalRouter(nl, grid_m=16, capacity_per_gcell=1000.0)
        r = router.route(result.x, result.y)
        assert r.total_overflow == 0.0
        assert r.top5_overflow == 0.0
