"""On-disk result cache: hits, misses, corruption, lifecycle."""

import json
import os

import numpy as np
import pytest

from repro.runtime import JobResult, PlacementJob, ResultCache, execute_job


@pytest.fixture(scope="module")
def job():
    return PlacementJob(
        design="fft_1",
        cells=250,
        seed=1,
        params={"max_iterations": 30, "min_iterations": 20},
        pipeline="tests.runtime_helpers:fake_pipeline",
    )


@pytest.fixture(scope="module")
def result(job):
    return execute_job(job)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


class TestResultCache:
    def test_miss_returns_none(self, cache, job):
        assert cache.get(job) is None
        assert job not in cache

    def test_put_get_round_trip(self, cache, job, result):
        assert cache.put(job, result)
        assert job in cache
        assert len(cache) == 1
        hit = cache.get(job)
        assert hit.cached and hit.attempts == 0
        assert hit.status == "done"
        assert hit.hpwl == result.hpwl
        assert np.array_equal(hit.x, result.x)
        assert np.array_equal(hit.y, result.y)
        assert hit.report.to_dict() == result.report.to_dict()

    def test_variant_jobs_do_not_collide(self, cache, job, result):
        cache.put(job, result)
        assert cache.get(job.with_seed(99)) is None
        assert cache.get(job.with_params(target_density=0.5)) is None

    def test_only_done_results_stored(self, cache, job):
        failed = JobResult(job_id=job.job_id, status="failed",
                           seed=1, error="boom")
        assert not cache.put(job, failed)
        assert job not in cache

    def test_cached_results_not_restored(self, cache, job, result):
        cache.put(job, result)
        hit = cache.get(job)
        other = ResultCache(cache.root + "-other")
        assert not other.put(job, hit)  # a hit must not be re-stored

    def test_corrupt_entry_is_a_miss(self, cache, job, result):
        cache.put(job, result)
        entry = cache.path_for(job.content_hash())
        with open(os.path.join(entry, "result.json"), "w") as fh:
            fh.write("{not json")
        assert cache.get(job) is None

    def test_schema_bump_invalidates(self, cache, job, result):
        cache.put(job, result)
        meta_path = os.path.join(cache.path_for(job.content_hash()),
                                 "result.json")
        with open(meta_path) as fh:
            data = json.load(fh)
        data["schema"] = -1
        with open(meta_path, "w") as fh:
            json.dump(data, fh)
        assert cache.get(job) is None

    def test_clear(self, cache, job, result):
        cache.put(job, result)
        cache.clear()
        assert len(cache) == 0
        assert cache.get(job) is None

    def test_layout_two_level_fanout(self, cache, job, result):
        cache.put(job, result)
        key = job.content_hash()
        entry = cache.path_for(key)
        assert os.path.dirname(entry).endswith(key[:2])
        assert sorted(os.listdir(entry)) == ["positions.npy", "result.json"]


class TestCorruptEntryEviction:
    def test_corrupt_entry_evicted_from_disk(self, cache, job, result):
        cache.put(job, result)
        entry = cache.path_for(job.content_hash())
        with open(os.path.join(entry, "result.json"), "w") as fh:
            fh.write("{not json")
        assert cache.get(job) is None
        # The damaged entry is gone, not left to shadow the key.
        assert not os.path.exists(entry)
        assert cache.evictions == 1
        # A fresh put works again after the eviction.
        assert cache.put(job, result)
        assert cache.get(job) is not None

    def test_on_evict_reports_key_and_reason(self, cache, job, result):
        cache.put(job, result)
        entry = cache.path_for(job.content_hash())
        with open(os.path.join(entry, "positions.npy"), "wb") as fh:
            fh.write(b"\x00garbage\x00")
        seen = []
        assert cache.get(job, on_evict=lambda k, r: seen.append((k, r))) is None
        assert seen and seen[0][0] == job.content_hash()
        assert seen[0][1]  # a non-empty reason string

    def test_fault_injector_corrupts_then_cache_self_heals(self, cache, job,
                                                           result):
        from repro.faults import corrupt_cache_entry

        cache.put(job, result)
        path = corrupt_cache_entry(cache, job)
        assert path is not None and path.endswith("positions.npy")
        assert cache.get(job) is None
        assert cache.evictions == 1
        assert job not in cache

    def test_corrupting_a_missing_entry_is_none(self, cache, job):
        from repro.faults import corrupt_cache_entry

        assert corrupt_cache_entry(cache, job) is None

    def test_stale_schema_not_evicted(self, cache, job, result):
        """Stale-but-well-formed entries are left alone (a rollback of
        the code could still read them); only corruption is evicted."""
        cache.put(job, result)
        meta_path = os.path.join(cache.path_for(job.content_hash()),
                                 "result.json")
        with open(meta_path) as fh:
            data = json.load(fh)
        data["schema"] = -1
        with open(meta_path, "w") as fh:
            json.dump(data, fh)
        assert cache.get(job) is None
        assert cache.evictions == 0
        assert os.path.exists(meta_path)

    def test_pool_emits_cache_evicted_event(self, tmp_path):
        from repro.faults import corrupt_cache_entry
        from repro.runtime import EventLog, WorkerPool

        cache = ResultCache(str(tmp_path / "cache"))
        job = PlacementJob(
            design="fft_1", cells=250, seed=1,
            params={"max_iterations": 30, "min_iterations": 20},
            pipeline="tests.runtime_helpers:fake_pipeline",
        )
        pool = WorkerPool(max_workers=1, cache=cache)
        pool.run([job])
        corrupt_cache_entry(cache, job)
        log = EventLog()
        results = pool.run([job], events=log)
        evicted = log.of_kind("cache-evicted")
        assert len(evicted) == 1
        assert evicted[0].payload["key"] == job.content_hash()
        assert "reason" in evicted[0].payload
        # The run was re-executed (miss), not served corrupt data.
        assert results[0].status == "done" and not results[0].cached


class TestHitMissCounters:
    def test_counters_start_at_zero(self, cache):
        assert cache.stats() == {"hits": 0, "misses": 0, "evictions": 0}

    def test_miss_and_hit_counted(self, cache, job, result):
        assert cache.get(job) is None
        assert cache.misses == 1
        cache.put(job, result)
        assert cache.get(job) is not None
        assert cache.hits == 1
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0}

    def test_eviction_counts_as_miss_too(self, cache, job, result):
        cache.put(job, result)
        entry = cache.path_for(job.content_hash())
        with open(os.path.join(entry, "result.json"), "w") as fh:
            fh.write("{not json")
        assert cache.get(job) is None
        assert cache.evictions == 1
        assert cache.misses == 1

    def test_batch_summary_reports_counters(self, job, result, tmp_path):
        from repro.runtime.batch import summary_table

        cache = ResultCache(str(tmp_path / "cache"))
        cache.get(job)
        cache.put(job, result)
        cache.get(job)
        table = summary_table([job], [result], cache=cache)
        assert "cache: 1 hit(s), 1 miss(es), 0 eviction(s)" in table

    def test_finished_events_carry_counters(self, tmp_path):
        from repro.runtime import EventLog, WorkerPool

        cache = ResultCache(str(tmp_path / "cache"))
        job = PlacementJob(
            design="fft_1", cells=250, seed=1,
            params={"max_iterations": 30, "min_iterations": 20},
            pipeline="tests.runtime_helpers:fake_pipeline",
        )
        log = EventLog()
        WorkerPool(max_workers=1, cache=cache).run([job], events=log)
        finished = log.of_kind("finished")
        assert finished and finished[0].payload["cache_misses"] == 1
        assert finished[0].payload["cache_hits"] == 0


class TestConcurrentAccess:
    """Two executors sharing one cache dir must not corrupt entries or
    double-run work they could share."""

    def test_two_pools_sharing_a_cache_dir(self, tmp_path):
        from repro.runtime import WorkerPool

        root = str(tmp_path / "shared-cache")
        jobs = [
            PlacementJob(
                design="fft_1", cells=250, seed=s,
                params={"max_iterations": 30, "min_iterations": 20},
                pipeline="tests.runtime_helpers:fake_pipeline",
            )
            for s in (1, 2, 3)
        ]
        import threading

        outcomes = {}

        def run(name):
            pool = WorkerPool(max_workers=1, cache=ResultCache(root))
            outcomes[name] = pool.run(list(jobs))

        threads = [threading.Thread(target=run, args=(n,))
                   for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert set(outcomes) == {"a", "b"}
        for name in ("a", "b"):
            assert [r.status for r in outcomes[name]] == ["done"] * 3
        # Both pools agree on every result (no torn/corrupt entries).
        for ra, rb in zip(outcomes["a"], outcomes["b"]):
            assert ra.hpwl == rb.hpwl
            np.testing.assert_array_equal(ra.x, rb.x)
        # The shared dir holds exactly one well-formed entry per job.
        readback = ResultCache(root)
        assert len(readback) == 3
        for job in jobs:
            hit = readback.get(job)
            assert hit is not None and hit.cached

    def test_concurrent_put_same_key_last_writer_wins_cleanly(
            self, tmp_path, job, result):
        """Hammer one key from many threads: every interleaving of the
        atomic temp+rename writes must leave a readable entry."""
        import threading

        root = str(tmp_path / "hammer")
        errors = []

        def writer():
            try:
                mine = ResultCache(root)
                for _ in range(5):
                    mine.put(job, result)
                    got = mine.get(job)
                    assert got is None or got.hpwl == result.hpwl
            except Exception as err:  # noqa: BLE001 — collecting
                errors.append(err)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        final = ResultCache(root).get(job)
        assert final is not None
        assert final.hpwl == result.hpwl

    def test_scheduler_dedupes_what_the_cache_cannot(self, tmp_path):
        """In-flight coalescing: two identical submissions to one
        scheduler run once even though the cache has no entry yet."""
        from repro.service import Scheduler

        cache = ResultCache(str(tmp_path / "cache"))
        sched = Scheduler(cache=cache)
        job = PlacementJob(
            design="fft_1", cells=250, seed=1,
            params={"max_iterations": 30, "min_iterations": 20},
            pipeline="tests.runtime_helpers:fake_pipeline",
        )
        leader = sched.submit(job)
        follower = sched.submit(PlacementJob.from_dict(job.to_dict()))
        assert follower.deduped_onto == leader.ticket
        leased = sched.lease()
        assert sched.cache_lookup(leased) is None    # nothing cached yet
        result = execute_job(leased.job)
        sched.finish(leased, result)
        assert sched.lease() is None                 # follower never ran
        assert follower.result.hpwl == result.hpwl
        assert cache.get(job) is not None            # stored once
