"""PlacementJob specs, content hashing and the in-process executor."""

import numpy as np
import pytest

from repro.core import PlacementParams
from repro.core.callbacks import QueueCallback
from repro.core.recorder import IterationRecord
from repro.flow import run_job
from repro.runtime import EventLog, JobResult, PlacementJob, execute_job
from repro.runtime.events import read_event_log


def small_job(**overrides):
    base = dict(
        design="fft_1",
        cells=250,
        params={"max_iterations": 30, "min_iterations": 20},
        seed=1,
    )
    base.update(overrides)
    return PlacementJob(**base)


def fake_job(**overrides):
    return small_job(pipeline="tests.runtime_helpers:fake_pipeline",
                     **overrides)


class TestJobSpec:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            PlacementJob()
        with pytest.raises(ValueError, match="exactly one"):
            PlacementJob(design="fft_1", aux="x.aux")

    def test_params_dict_coerced(self):
        job = small_job()
        assert isinstance(job.params, PlacementParams)
        assert job.params.max_iterations == 30

    def test_bad_param_key_rejected(self):
        with pytest.raises(ValueError, match="bad job params"):
            small_job(params={"not_a_knob": 1})

    def test_unknown_manifest_key_rejected(self):
        with pytest.raises(ValueError, match="unknown job manifest keys"):
            PlacementJob.from_dict({"design": "fft_1", "turbo": True})

    def test_json_round_trip(self):
        job = small_job(timeout=12.5, retries=2, tag="demo")
        restored = PlacementJob.from_json(job.to_json())
        assert restored == job
        assert restored.content_hash() == job.content_hash()

    def test_seed_overrides_params(self):
        job = small_job(seed=7)
        assert job.effective_seed() == 7
        assert job.effective_params().seed == 7
        assert job.params.seed == 0  # the shared params object is untouched

    def test_job_id_readable(self):
        job = small_job(seed=5)
        assert job.job_id.startswith("fft_1:xplace:s5:")


class TestContentHash:
    def test_stable_across_instances(self):
        assert small_job().content_hash() == small_job().content_hash()

    def test_semantic_knobs_change_hash(self):
        base = small_job().content_hash()
        assert small_job(seed=2).content_hash() != base
        assert small_job(placer="baseline").content_hash() != base
        assert small_job(dp_passes=2).content_hash() != base
        assert small_job(cells=260).content_hash() != base
        changed = small_job(
            params={"max_iterations": 31, "min_iterations": 20}
        )
        assert changed.content_hash() != base

    def test_non_semantic_knobs_keep_hash(self):
        base = small_job().content_hash()
        assert small_job(timeout=99.0).content_hash() == base
        assert small_job(retries=3).content_hash() == base
        assert small_job(tag="other").content_hash() == base
        verbose = small_job(
            params={"max_iterations": 30, "min_iterations": 20,
                    "verbose": True}
        )
        assert verbose.content_hash() == base

    def test_bookshelf_digest_tracks_file_bytes(self, tmp_path):
        from repro.benchgen import make_design
        from repro.bookshelf import write_bookshelf

        netlist = make_design("fft_1", num_cells=100)
        aux = write_bookshelf(netlist, str(tmp_path / "bench"))
        job = PlacementJob(aux=str(aux))
        before = job.content_hash()
        nodes = next(tmp_path.glob("bench/*.nodes"))
        nodes.write_text(nodes.read_text() + "\n# tweaked\n")
        assert PlacementJob(aux=str(aux)).content_hash() != before


class TestVariants:
    def test_with_seed(self):
        job = small_job()
        variant = job.with_seed(9)
        assert variant.effective_seed() == 9
        assert variant.content_hash() != job.content_hash()
        assert variant.design == job.design

    def test_with_params(self):
        job = small_job()
        variant = job.with_params(target_density=0.8)
        assert variant.params.target_density == 0.8
        assert job.params.target_density == 0.9
        assert variant.content_hash() != job.content_hash()


class TestExecuteJob:
    def test_fake_pipeline_executes(self):
        result = execute_job(fake_job())
        assert result.ok and result.status == "done"
        assert result.hpwl is not None and result.hpwl > 0
        assert np.isfinite(result.x).all() and np.isfinite(result.y).all()
        assert result.report.stage("gp").metrics["gp_hpwl"] > 0

    def test_runtime_stage_carries_profiler_totals(self):
        result = execute_job(small_job())
        runtime = result.report.stage("runtime")
        assert runtime.metrics["seed"] == 1
        assert runtime.metrics["kernel_launches"] > 0
        assert runtime.metrics["kernel_counts"]
        assert runtime.metrics["final_hpwl"] == result.hpwl
        # Stage list is the real flow plus the synthetic runtime stage.
        assert [s.name for s in result.report.stages] == \
            ["gp", "lg", "dp", "runtime"]

    def test_deterministic_given_seed(self):
        first = execute_job(small_job())
        second = execute_job(small_job())
        assert first.hpwl == second.hpwl
        assert np.array_equal(first.x, second.x)
        assert np.array_equal(first.y, second.y)

    def test_loop_events_bridged(self):
        log = EventLog()
        job = small_job()
        execute_job(job, emit=log, heartbeat_every=5)
        kinds = [e.kind for e in log.events]
        assert kinds[0] == "loop_start"
        assert kinds[-1] == "loop_stop"
        assert log.count("heartbeat") >= 2
        assert all(e.job_id == job.job_id for e in log.events)

    def test_custom_factory_must_be_module_colon_function(self):
        with pytest.raises(ValueError, match="module:function"):
            execute_job(small_job(pipeline="tests.runtime_helpers"))

    def test_result_dict_round_trip(self):
        result = execute_job(fake_job())
        restored = JobResult.from_dict(result.to_dict())
        assert restored.job_id == result.job_id
        assert restored.hpwl == result.hpwl
        assert restored.report.to_dict() == result.report.to_dict()


class TestRunJobEntryPoint:
    def test_run_job_uses_cache(self, tmp_path):
        from repro.runtime import ResultCache

        cache = ResultCache(str(tmp_path / "cache"))
        job = fake_job()
        first = run_job(job, cache=cache)
        assert not first.cached
        second = run_job(job, cache=cache)
        assert second.cached
        assert second.hpwl == first.hpwl
        assert np.array_equal(second.x, first.x)


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit("queued", "j1")
        log.emit("started", "j1", pid=42)
        log.emit("failed", "j2", reason="error", error="boom")
        assert len(log) == 3
        assert log.count("queued") == 1
        assert [e.job_id for e in log.of_kind("queued", "started")] == \
            ["j1", "j1"]
        assert log.failures[0].payload["error"] == "boom"
        assert log.for_job("j2")[0].kind == "failed"

    def test_queries_safe_during_concurrent_emit(self):
        """Query methods snapshot under the lock: pool-drain and HTTP
        threads emit while stats/tests iterate concurrently."""
        import threading
        import time

        log = EventLog()
        errors = []
        stop = threading.Event()

        def emitter():
            i = 0
            while not stop.is_set():
                log.emit("heartbeat", f"j{i % 3}", iteration=i)
                i += 1

        def reader():
            while not stop.is_set():
                try:
                    log.of_kind("heartbeat")
                    log.count("heartbeat")
                    log.for_job("j0")
                    len(log)
                except Exception as err:  # noqa: BLE001 — the assertion
                    errors.append(err)
                    return

        threads = [threading.Thread(target=emitter, daemon=True),
                   threading.Thread(target=reader, daemon=True)]
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert errors == []
        assert log.count("heartbeat") == len(log)

    def test_put_adapter(self):
        log = EventLog()
        log.put({"event": "heartbeat", "job_id": "j1", "iteration": 5,
                 "hpwl": 1.0})
        assert log.events[0].kind == "heartbeat"
        assert log.events[0].payload["iteration"] == 5

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path=path) as log:
            log.emit("queued", "j1", seed=3)
            log.emit("finished", "j1", hpwl=12.5)
        events = read_event_log(path)
        assert [e.kind for e in events] == ["queued", "finished"]
        assert events[0].payload["seed"] == 3
        assert events[1].payload["hpwl"] == 12.5
        assert events[0].ts > 0

    def test_queue_callback_rate_limits(self):
        log = EventLog()
        callback = QueueCallback(log, label="j9", every=2)
        for i in range(5):
            callback.on_iteration(IterationRecord(
                iteration=i, hpwl=1.0, wa=1.0, overflow=0.5, gamma=1.0,
                lam=1.0, omega=0.1, grad_ratio=1.0, density_computed=True,
                step_length=0.1,
            ))
        # iterations 0, 2, 4
        assert log.count("heartbeat") == 3
        assert all(e.job_id == "j9" for e in log.events)


class TestFaultedJobs:
    def test_faults_join_the_content_hash(self):
        base = small_job().content_hash()
        faulty = small_job(
            faults={"faults": [{"kind": "nan-grad", "iteration": 5}]}
        )
        assert faulty.content_hash() != base

    def test_timeout_retries_is_non_semantic(self):
        assert small_job(timeout_retries=3).content_hash() == \
            small_job().content_hash()

    def test_negative_timeout_retries_rejected(self):
        with pytest.raises(ValueError):
            small_job(timeout_retries=-1)

    def test_fault_plan_coercion_and_round_trip(self):
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan(faults=[FaultSpec("slow", iteration=3)], seed=9)
        job = small_job(faults=plan)
        assert isinstance(job.faults, dict)  # stored serialized
        again = PlacementJob.from_dict(job.to_dict())
        assert again.fault_plan().faults == plan.faults
        assert small_job().fault_plan() is None

    def test_job_checkpoint_dir_mirrors_cache_layout(self, tmp_path):
        from repro.runtime import job_checkpoint_dir

        job = small_job()
        path = job_checkpoint_dir(str(tmp_path), job)
        key = job.content_hash()
        assert path == str(tmp_path / key[:2] / key)

    def test_execute_job_reports_resumed_flag(self, tmp_path):
        job = small_job(params={"max_iterations": 40,
                                "checkpoint_every": 10})
        result = execute_job(job, checkpoint_dir=str(tmp_path))
        assert result.status == "done"
        runtime = result.report.stage("runtime")
        assert runtime.metrics["resumed"] is False
