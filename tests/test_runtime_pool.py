"""WorkerPool scheduling: parallelism, crash/timeout/kill recovery.

The fault-injection pipelines live in ``tests/runtime_helpers.py`` so
worker subprocesses can import them by dotted name.
"""

import time

import numpy as np
import pytest

from repro.runtime import (
    EventLog,
    PlacementJob,
    ResultCache,
    WorkerPool,
)

FAKE = "tests.runtime_helpers:fake_pipeline"
SLEEPY = "tests.runtime_helpers:sleepy_pipeline"
CRASHY = "tests.runtime_helpers:crashy_pipeline"
KILLER = "tests.runtime_helpers:killer_pipeline"


def make_job(seed=1, **overrides):
    base = dict(
        design="fft_1",
        cells=250,
        seed=seed,
        params={"max_iterations": 30, "min_iterations": 20},
        pipeline=FAKE,
    )
    base.update(overrides)
    return PlacementJob(**base)


class TestInlinePool:
    def test_max_workers_one_is_inline(self):
        assert WorkerPool(max_workers=1).inline
        assert not WorkerPool(max_workers=2).inline

    def test_unknown_start_method_degrades_to_inline(self):
        assert WorkerPool(max_workers=4, start_method="no-such-method").inline

    def test_runs_jobs_in_order(self):
        log = EventLog()
        jobs = [make_job(seed=s) for s in (1, 2, 3)]
        results = WorkerPool(max_workers=1).run(jobs, events=log)
        assert [r.status for r in results] == ["done"] * 3
        assert [r.seed for r in results] == [1, 2, 3]
        assert log.count("queued") == 3
        assert log.count("started") == 3
        assert log.count("finished") == 3
        assert not log.failures

    def test_stage_error_surfaces_and_pool_stays_healthy(self):
        log = EventLog()
        jobs = [make_job(seed=1, pipeline=CRASHY), make_job(seed=2)]
        results = WorkerPool(max_workers=1).run(jobs, events=log)
        assert results[0].status == "failed"
        assert "injected stage crash" in results[0].error
        # The partial FlowReport of the failed pipeline is preserved.
        assert results[0].report is not None
        assert results[0].report.stage("crash").error is not None
        assert results[1].status == "done"
        failed = log.failures
        assert len(failed) == 1
        assert failed[0].payload["reason"] == "error"
        assert "injected stage crash" in failed[0].payload["error"]

    def test_cooperative_timeout(self):
        # A real GP loop that cannot converge, with a tiny budget: the
        # DeadlineCallback must abort it from inside the iteration seam.
        log = EventLog()
        hog = PlacementJob(
            design="fft_1",
            cells=250,
            seed=1,
            params={"max_iterations": 100000, "min_iterations": 20,
                    "stop_overflow": 1e-9},
            timeout=0.3,
        )
        results = WorkerPool(max_workers=1).run([hog, make_job(seed=2)],
                                                events=log)
        assert results[0].status == "timeout"
        assert "timeout" in results[0].error
        assert results[1].status == "done"
        assert log.failures[0].payload["reason"] == "timeout"

    def test_cache_short_circuits(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job = make_job()
        pool = WorkerPool(max_workers=1, cache=cache)
        first = pool.run([job])[0]
        log = EventLog()
        second = pool.run([job], events=log)[0]
        assert not first.cached and second.cached
        assert second.hpwl == first.hpwl
        assert log.count("cached") == 1
        assert log.count("started") == 0


class TestProcessPool:
    def test_parallel_jobs_all_finish(self):
        log = EventLog()
        jobs = [make_job(seed=s) for s in (1, 2, 3)]
        pool = WorkerPool(max_workers=2)
        results = pool.run(jobs, events=log)
        assert [r.status for r in results] == ["done"] * 3
        # Deterministic content regardless of scheduling.
        assert results[0].hpwl != results[1].hpwl
        for result in results:
            assert np.isfinite(result.x).all()
        started = log.of_kind("started")
        assert len(started) == 3
        assert all("pid" in e.payload for e in started)

    def test_worker_bridges_loop_events(self):
        # A real (tiny) GP run in a worker process: heartbeats must
        # cross the process boundary through the queue bridge.
        log = EventLog()
        job = make_job(pipeline=None)
        results = WorkerPool(max_workers=2, heartbeat_every=5).run(
            [job], events=log
        )
        assert results[0].status == "done"
        assert log.count("loop_start") == 1
        assert log.count("loop_stop") == 1
        assert log.count("heartbeat") >= 2
        runtime = results[0].report.stage("runtime")
        assert runtime.metrics["kernel_launches"] > 0

    def test_crash_in_stage_reports_failed(self):
        log = EventLog()
        jobs = [make_job(seed=1, pipeline=CRASHY), make_job(seed=2)]
        results = WorkerPool(max_workers=2).run(jobs, events=log)
        assert results[0].status == "failed"
        assert "injected stage crash" in results[0].error
        assert results[1].status == "done"
        assert len(log.failures) == 1

    def test_timeout_kills_worker(self):
        log = EventLog()
        jobs = [make_job(seed=1, pipeline=SLEEPY, timeout=1.0),
                make_job(seed=2)]
        results = WorkerPool(max_workers=2).run(jobs, events=log)
        assert results[0].status == "timeout"
        assert "timeout" in results[0].error
        assert results[1].status == "done"
        failed = log.failures
        assert failed[0].payload["reason"] == "timeout"

    def test_killed_worker_reports_crash(self):
        log = EventLog()
        jobs = [make_job(seed=1, pipeline=KILLER), make_job(seed=2)]
        results = WorkerPool(max_workers=2).run(jobs, events=log)
        assert results[0].status == "failed"
        assert "crashed" in results[0].error
        assert results[0].attempts == 1
        assert results[1].status == "done"
        assert log.failures[0].payload["reason"] == "crash"

    def test_crashed_worker_retried(self):
        log = EventLog()
        job = make_job(seed=1, pipeline=KILLER, retries=1)
        results = WorkerPool(max_workers=2).run([job], events=log)
        assert results[0].status == "failed"
        assert results[0].attempts == 2
        assert log.count("retry") == 1
        assert log.count("started") == 2

    def test_stop_when_cancels_the_field(self):
        log = EventLog()
        jobs = [make_job(seed=1), make_job(seed=2, pipeline=SLEEPY)]
        pool = WorkerPool(max_workers=2)
        results = pool.run(jobs, events=log,
                           stop_when=lambda r: r.ok)
        statuses = sorted(r.status for r in results)
        assert statuses == ["cancelled", "done"]
        assert log.count("cancelled") == 1

    def test_cache_shared_across_modes(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job = make_job()
        inline = WorkerPool(max_workers=1, cache=cache).run([job])[0]
        hit = WorkerPool(max_workers=2, cache=cache).run([job])[0]
        assert not inline.cached and hit.cached
        assert hit.hpwl == inline.hpwl


class TestDeadlineCallback:
    def test_within_budget_is_quiet(self):
        from repro.runtime import DeadlineCallback

        cb = DeadlineCallback(time.perf_counter() + 60.0, 60.0)
        cb.on_start(None)
        cb.on_iteration(None)  # must not raise

    def test_expired_deadline_raises_on_iteration(self):
        from repro.runtime import DeadlineCallback, JobTimeoutError

        cb = DeadlineCallback(time.perf_counter() - 0.01, 0.25)
        with pytest.raises(JobTimeoutError, match="0.25"):
            cb.on_iteration(None)

    def test_expired_deadline_raises_on_start(self):
        from repro.runtime import DeadlineCallback, JobTimeoutError

        cb = DeadlineCallback(time.perf_counter() - 0.01, 0.25)
        with pytest.raises(JobTimeoutError):
            cb.on_start(None)


class TestRetryBackoff:
    def test_backoff_is_deterministic_per_job_and_attempt(self):
        pool = WorkerPool(retry_backoff=0.25)
        first = pool._backoff_delay("job-a", 1)
        assert first == pool._backoff_delay("job-a", 1)
        assert first != pool._backoff_delay("job-b", 1)

    def test_backoff_grows_exponentially_with_bounded_jitter(self):
        pool = WorkerPool(retry_backoff=0.25)
        for n in (1, 2, 3):
            base = 0.25 * 2 ** (n - 1)
            delay = pool._backoff_delay("j", n)
            assert base <= delay <= base * 1.5

    def test_crash_retry_event_carries_backoff_and_reason(self):
        log = EventLog()
        job = make_job(seed=1, pipeline=KILLER, retries=1)
        results = WorkerPool(max_workers=2, retry_backoff=0.01).run(
            [job], events=log
        )
        assert results[0].status == "failed"
        retries = log.of_kind("retry")
        assert len(retries) == 1
        assert retries[0].payload["reason"] == "crash"
        assert retries[0].payload["backoff"] > 0
        assert retries[0].payload["crashes"] == 1
        failed = log.failures[0].payload
        assert failed["reason"] == "crash"
        assert failed["crashes"] == 2 and failed["timeouts"] == 0


class TestTimeoutRetries:
    def test_inline_timeout_retry_then_exhaustion(self):
        log = EventLog()
        hog = PlacementJob(
            design="fft_1",
            cells=250,
            seed=1,
            params={"max_iterations": 100000, "min_iterations": 20,
                    "stop_overflow": 1e-9},
            timeout=0.3,
            timeout_retries=1,
        )
        results = WorkerPool(max_workers=1).run([hog], events=log)
        assert results[0].status == "timeout"
        assert results[0].attempts == 2
        retries = log.of_kind("retry")
        assert len(retries) == 1
        assert retries[0].payload["reason"] == "timeout"
        assert log.failures[0].payload["timeouts"] == 2

    def test_process_timeout_retry_then_exhaustion(self):
        log = EventLog()
        job = make_job(seed=1, pipeline=SLEEPY, timeout=0.5,
                       timeout_retries=1)
        results = WorkerPool(max_workers=2, retry_backoff=0.01).run(
            [job], events=log
        )
        assert results[0].status == "timeout"
        retries = log.of_kind("retry")
        assert len(retries) == 1
        assert retries[0].payload["reason"] == "timeout"
        failed = log.failures[0].payload
        assert failed["reason"] == "timeout"
        assert failed["timeouts"] == 2 and failed["crashes"] == 0


class TestCheckpointedRetries:
    def test_crashed_worker_resumes_from_checkpoint(self, tmp_path):
        """A worker killed mid-GP must finish on retry — from mid-run,
        not iteration 0 — with the fault-free HPWL."""
        log = EventLog()
        base_params = {"max_iterations": 60, "checkpoint_every": 10}
        job = PlacementJob(
            design="fft_1", cells=120, seed=1, tag="chaos",
            params=base_params, retries=1,
            faults={"faults": [{"kind": "crash", "iteration": 35}]},
        )
        pool = WorkerPool(max_workers=2, retry_backoff=0.01,
                          checkpoint_dir=str(tmp_path / "ckpt"))
        results = pool.run([job], events=log)
        assert results[0].status == "done"
        assert results[0].attempts == 2
        retries = log.of_kind("retry")
        assert retries and retries[0].payload["reason"] == "crash"
        assert retries[0].payload["resume"] is True
        resumed = [e for e in log.of_kind("recovery")
                   if e.payload["action"] == "resumed"]
        assert len(resumed) == 1
        assert resumed[0].payload["snapshot_iteration"] == 30
        # Same trajectory as an uninterrupted run of the same job.
        clean_job = PlacementJob(design="fft_1", cells=120, seed=1,
                                 params=base_params)
        clean = WorkerPool(max_workers=1).run([clean_job])[0]
        assert results[0].hpwl == clean.hpwl

    def test_first_attempt_resumes_with_resume_flag(self, tmp_path):
        """repro batch --resume: a killed batch's spill is picked up by
        the *first* attempt of the rerun."""
        from repro.faults import InjectedFault  # noqa: F401 — doc import

        ckpt = str(tmp_path / "ckpt")
        params = {"max_iterations": 60, "checkpoint_every": 10}
        dying = PlacementJob(design="fft_1", cells=120, seed=1, tag="kill",
                             params=params,
                             faults={"faults": [
                                 {"kind": "abort", "iteration": 35}]})
        log = EventLog()
        first = WorkerPool(max_workers=1, checkpoint_dir=ckpt).run(
            [dying], events=log
        )[0]
        assert first.status == "failed"
        assert "injected abort" in first.error
        # Rerun without the fault, resuming: picks up at the checkpoint.
        rerun = PlacementJob(design="fft_1", cells=120, seed=1, tag="kill",
                             params=params,
                             faults={"faults": [
                                 {"kind": "abort", "iteration": 35}]})
        log2 = EventLog()
        second = WorkerPool(max_workers=1, checkpoint_dir=ckpt,
                            resume=True).run([rerun], events=log2)[0]
        assert second.status == "failed"  # abort re-fires on resume...
        resumed = [e for e in log2.of_kind("recovery")
                   if e.payload["action"] == "resumed"]
        assert len(resumed) == 1  # ...but the run DID resume from spill
        assert resumed[0].payload["snapshot_iteration"] == 30


class TestGracefulShutdown:
    """SIGINT/SIGTERM during a run: drain, mark resumable, flush."""

    def hog(self, seed=1, **overrides):
        base = dict(
            design="fft_1", cells=250, seed=seed,
            params={"max_iterations": 100000, "min_iterations": 20,
                    "stop_overflow": 1e-9, "checkpoint_every": 10},
        )
        base.update(overrides)
        return PlacementJob(**base)

    def send_signal_soon(self, signum, delay=0.6):
        import os
        import signal as signal_mod
        import threading

        timer = threading.Timer(
            delay, lambda: os.kill(os.getpid(), signum))
        timer.start()
        return timer

    def test_inline_sigterm_interrupts_resumably(self, tmp_path):
        import signal as signal_mod

        log = EventLog()
        pool = WorkerPool(max_workers=1,
                          checkpoint_dir=str(tmp_path / "ckpt"))
        timer = self.send_signal_soon(signal_mod.SIGTERM)
        try:
            results = pool.run([self.hog(seed=1), self.hog(seed=2)],
                               events=log)
        finally:
            timer.cancel()
        assert results[0].status == "interrupted"
        assert "resumable" in results[0].error
        assert results[1].status == "interrupted"
        interrupted = log.of_kind("interrupted")
        assert len(interrupted) == 2
        assert interrupted[0].payload["resumable"] is True
        # The queued job never started; the running one spilled state.
        assert any(e.payload.get("pending") for e in interrupted)

    def test_inline_sigterm_without_checkpoints_not_resumable(self):
        import signal as signal_mod

        log = EventLog()
        pool = WorkerPool(max_workers=1)       # no checkpoint_dir
        timer = self.send_signal_soon(signal_mod.SIGTERM)
        try:
            results = pool.run([self.hog(seed=1)], events=log)
        finally:
            timer.cancel()
        assert results[0].status == "interrupted"
        assert "not resumable" in results[0].error
        assert log.of_kind("interrupted")[0].payload["resumable"] is False

    def test_process_sigint_drains_and_interrupts(self, tmp_path):
        import signal as signal_mod

        log = EventLog()
        pool = WorkerPool(max_workers=2,
                          checkpoint_dir=str(tmp_path / "ckpt"),
                          drain_grace=0.3)
        timer = self.send_signal_soon(signal_mod.SIGINT, delay=1.2)
        try:
            results = pool.run(
                [self.hog(seed=s) for s in (1, 2, 3)], events=log)
        finally:
            timer.cancel()
        assert all(r.status == "interrupted" for r in results)
        assert all(r.error and "resumable" in r.error for r in results)
        assert log.count("interrupted") == 3

    def test_handlers_restored_after_run(self):
        import signal as signal_mod

        before_term = signal_mod.getsignal(signal_mod.SIGTERM)
        before_int = signal_mod.getsignal(signal_mod.SIGINT)
        WorkerPool(max_workers=1).run([make_job(seed=1)])
        assert signal_mod.getsignal(signal_mod.SIGTERM) is before_term
        assert signal_mod.getsignal(signal_mod.SIGINT) is before_int

    def test_interrupted_run_resumes_from_checkpoint(self, tmp_path):
        import signal as signal_mod

        ckpt = str(tmp_path / "ckpt")
        job = PlacementJob(
            design="fft_1", cells=250, seed=1,
            params={"max_iterations": 100000, "min_iterations": 20,
                    "stop_overflow": 1e-9, "checkpoint_every": 10})
        pool = WorkerPool(max_workers=1, checkpoint_dir=ckpt)
        timer = self.send_signal_soon(signal_mod.SIGTERM)
        try:
            first = pool.run([job])[0]
        finally:
            timer.cancel()
        assert first.status == "interrupted"
        # Rerun with --resume and a sane budget: picks up the spill.
        rerun = PlacementJob(
            design="fft_1", cells=250, seed=1,
            params={"max_iterations": 100000, "min_iterations": 20,
                    "stop_overflow": 1e-9, "checkpoint_every": 10},
            timeout=10.0)
        log = EventLog()
        second = WorkerPool(max_workers=1, checkpoint_dir=ckpt,
                            resume=True).run([rerun], events=log)[0]
        resumed = [e for e in log.of_kind("recovery")
                   if e.payload["action"] == "resumed"]
        assert len(resumed) == 1
        assert resumed[0].payload["snapshot_iteration"] > 0
