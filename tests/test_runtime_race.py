"""Multi-seed racing and parameter sweeps."""

import pytest

from repro.runtime import (
    EventLog,
    PlacementJob,
    ResultCache,
    WorkerPool,
    race_seeds,
    sweep_params,
)

FAKE = "tests.runtime_helpers:fake_pipeline"


def make_job(**overrides):
    base = dict(
        design="fft_1",
        cells=250,
        seed=1,
        params={"max_iterations": 30, "min_iterations": 20},
        pipeline=FAKE,
    )
    base.update(overrides)
    return PlacementJob(**base)


def inline_pool():
    return WorkerPool(max_workers=1)


class TestRaceSeeds:
    def test_best_mode_picks_min_hpwl(self):
        race = race_seeds(make_job(), n=4, pool=inline_pool())
        assert race.mode == "best" and race.variant_of == "seed"
        assert len(race.results) == 4
        assert all(r.ok for r in race.results)
        assert race.winner.hpwl == min(r.hpwl for r in race.results)
        # Four distinct seeds → four distinct placements.
        assert len({r.hpwl for r in race.results}) == 4
        assert [r.seed for r in race.results] == [1, 2, 3, 4]

    def test_explicit_seeds(self):
        race = race_seeds(make_job(), seeds=[10, 20], pool=inline_pool())
        assert [r.seed for r in race.results] == [10, 20]

    def test_winner_report_lists_all_contenders(self):
        race = race_seeds(make_job(), n=3, pool=inline_pool())
        metrics = race.winner.report.stage("race").metrics
        assert metrics["winner_seed"] == race.winner.seed
        assert metrics["mode"] == "best"
        contenders = metrics["contenders"]
        assert len(contenders) == 3
        assert {c["seed"] for c in contenders} == {1, 2, 3}
        assert all(c["status"] == "done" for c in contenders)
        assert race.summary().count("seed=") >= 3

    def test_first_mode_cancels_losers(self):
        log = EventLog()
        race = race_seeds(make_job(), n=3, mode="first",
                          pool=inline_pool(), events=log)
        assert race.mode == "first"
        assert race.winner.ok
        statuses = sorted(r.status for r in race.results)
        assert statuses == ["cancelled", "cancelled", "done"]
        assert log.count("cancelled") == 2

    def test_all_failures_raise(self):
        crashy = make_job(pipeline="tests.runtime_helpers:crashy_pipeline")
        with pytest.raises(RuntimeError, match="no successful placement"):
            race_seeds(crashy, n=2, pool=inline_pool())

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown race mode"):
            race_seeds(make_job(), n=2, mode="median", pool=inline_pool())

    def test_race_over_processes(self):
        race = race_seeds(make_job(), n=2, max_workers=2)
        assert race.winner.ok
        assert len(race.results) == 2

    def test_cached_contenders_join_the_race(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        first = race_seeds(make_job(), n=2,
                           pool=WorkerPool(max_workers=1, cache=cache))
        second = race_seeds(make_job(), n=2,
                            pool=WorkerPool(max_workers=1, cache=cache))
        assert all(r.cached for r in second.results)
        assert second.winner.hpwl == first.winner.hpwl


class TestSweepParams:
    def test_sweeps_param_variants(self):
        race = sweep_params(
            make_job(),
            variants=[{"seed": 11}, {"seed": 12}, {"seed": 13}],
            pool=inline_pool(),
        )
        assert race.variant_of == "params"
        assert len(race.results) == 3
        assert race.winner.hpwl == min(r.hpwl for r in race.results)
        metrics = race.winner.report.stage("race").metrics
        assert metrics["variant_of"] == "params"

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="at least one contender"):
            sweep_params(make_job(), variants=[], pool=inline_pool())


class TestReclaimedAccounting:
    """First-past-the-post cancels losers; their partial runtime is
    *reclaimed* compute and must be visible in every summary."""

    def _field(self):
        from repro.runtime import JobResult, RaceResult

        winner = JobResult(job_id="j-win", status="done", seed=1,
                           hpwl=10.0, seconds=2.0)
        losers = [
            JobResult(job_id=f"j-{seed}", status="cancelled", seed=seed,
                      seconds=seconds,
                      error="cancelled: first-past-the-post")
            for seed, seconds in ((2, 1.5), (3, 0.75))
        ]
        return RaceResult(winner=winner, results=[winner] + losers,
                          mode="first")

    def test_reclaimed_sums_cancelled_partial_runtime(self):
        race = self._field()
        assert race.reclaimed_core_seconds == 2.25
        assert race.to_dict()["reclaimed_core_seconds"] == 2.25

    def test_summary_reports_reclaimed(self):
        assert "reclaimed=2.25s" in self._field().summary()

    def test_best_mode_reclaims_nothing(self):
        race = race_seeds(make_job(), n=2, pool=inline_pool())
        assert race.reclaimed_core_seconds == 0.0
        assert "reclaimed" not in race.summary()

    def test_batch_summary_counts_reclaimed(self):
        from repro.runtime import JobResult, summary_table

        jobs = [make_job(seed=1), make_job(seed=2)]
        results = [
            JobResult(job_id=jobs[0].job_id, status="done", seed=1,
                      hpwl=10.0, seconds=2.0),
            JobResult(job_id=jobs[1].job_id, status="cancelled", seed=2,
                      seconds=3.0, error="cancelled: group cancelled"),
        ]
        text = summary_table(jobs, results)
        assert "1 cancelled" in text
        assert "reclaimed 3.00 core-seconds" in text
