"""Tests for the runtime numerical sanitizer and the placer's guard."""

import numpy as np
import pytest

from repro import PlacementParams, make_design
from repro.analysis.sanitizer import (
    NumericalFault,
    Sanitizer,
    active,
    disable,
    enable,
    install_from_env,
    sanitized,
)
from repro.autograd import gradcheck_all
from repro.autograd.tensor import Function, Tensor
from repro.core import XPlacer, initial_positions
from repro.core.callbacks import Diagnostic, IterationCallback, QueueCallback


@pytest.fixture(autouse=True)
def _sanitizer_off_afterwards():
    yield
    disable()


@pytest.fixture(scope="module")
def netlist():
    return make_design("fft_1", num_cells=120)


class TestSanitizerUnit:
    def test_check_array_accepts_finite(self):
        s = Sanitizer()
        s.check_array("op", np.ones(4))
        assert s.checks == 1 and s.faults == 0

    def test_check_array_rejects_nan_with_provenance(self):
        s = Sanitizer()
        arr = np.array([1.0, np.nan, np.inf])
        with pytest.raises(NumericalFault) as err:
            s.check_array("density.grad_x", arr, iteration=7)
        fault = err.value
        assert fault.op == "density.grad_x"
        assert fault.iteration == 7
        assert "1 NaN, 1 Inf" in str(fault)
        assert s.faults == 1

    def test_check_array_skips_integer_arrays(self):
        Sanitizer().check_array("op", np.array([1, 2, 3]))

    def test_backward_shape_mismatch(self):
        s = Sanitizer()
        with pytest.raises(NumericalFault, match="cannot be reduced"):
            s.check_backward("Mul", np.ones(3), np.ones((7, 9)))

    def test_backward_broadcastable_grad_ok(self):
        # (4,) grad against a (3, 4) input is fine pre-_unbroadcast; the
        # other direction — grad smaller than what broadcasting implies —
        # is too ((3,4) grad for (4,) input sums down).
        Sanitizer().check_backward("Add", np.ones((3, 4)), np.ones((3, 4)))
        Sanitizer().check_backward("Add", np.ones(4), np.ones((3, 4)))

    def test_backward_complex_grad_for_real_input(self):
        s = Sanitizer()
        with pytest.raises(NumericalFault, match="complex gradient"):
            s.check_backward("Op", np.ones(3), np.ones(3, dtype=np.complex128))

    def test_backward_downcast_grad(self):
        s = Sanitizer()
        with pytest.raises(NumericalFault, match="downcasts"):
            s.check_backward("Op", np.ones(3), np.ones(3, dtype=np.float32))


class TestActivation:
    def test_enable_disable_roundtrip(self):
        assert active() is None
        s = enable()
        assert active() is s
        disable()
        assert active() is None

    def test_sanitized_restores_previous(self):
        outer = enable()
        with sanitized() as inner:
            assert active() is inner and inner is not outer
        assert active() is outer

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        first = install_from_env()
        assert first is not None
        assert install_from_env() is first  # idempotent

    def test_env_off_means_inactive(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert install_from_env() is None


class _NaNForward(Function):
    @staticmethod
    def forward(ctx, a):
        out = a.copy()
        out[0] = np.nan
        return out

    @staticmethod
    def backward(ctx, grad):
        return (grad,)


class _NaNBackward(Function):
    @staticmethod
    def forward(ctx, a):
        return a * 1.0

    @staticmethod
    def backward(ctx, grad):
        return (np.full_like(grad, np.nan),)


class TestTapePath:
    def test_forward_nan_caught_with_op_name(self):
        t = Tensor(np.ones(4), requires_grad=True)
        with sanitized():
            with pytest.raises(NumericalFault, match="_NaNForward"):
                _NaNForward.apply(t)

    def test_backward_nan_caught_with_op_name(self):
        t = Tensor(np.ones(4), requires_grad=True)
        with sanitized():
            out = _NaNBackward.apply(t)
            with pytest.raises(NumericalFault) as err:
                out.sum().backward()
        assert err.value.op == "_NaNBackward"
        assert err.value.stage == "autograd.backward"

    def test_disabled_sanitizer_lets_nan_through(self):
        t = Tensor(np.ones(4), requires_grad=True)
        out = _NaNForward.apply(t)  # no raise: hooks are off
        assert np.isnan(out.data[0])

    def test_clean_graph_unaffected(self):
        t = Tensor(np.ones(4), requires_grad=True)
        with sanitized() as s:
            (t * 2.0).sum().backward()
            assert s.checks > 0 and s.faults == 0
        assert np.allclose(t.grad, 2.0)

    def test_gradcheck_sweep_runs_under_sanitizer(self):
        with sanitized() as s:
            names = gradcheck_all()
        assert len(names) >= 20
        assert s.faults == 0


class TestGradientEnginePath:
    def test_injected_nan_names_wirelength_op(self, netlist):
        placer = XPlacer(
            netlist, PlacementParams(max_iterations=5, min_iterations=1)
        )
        engine = placer.engine
        n = netlist.num_cells

        class _PoisonedWL:
            def __call__(self, x, y, gamma):
                class R:
                    grad_x = np.full(n, np.nan)
                    grad_y = np.zeros(n)
                    wa = 1.0
                    hpwl = 1.0

                return R()

        engine.wirelength = _PoisonedWL()
        mov = netlist.movable_index
        x0, y0 = initial_positions(netlist, rng=np.random.default_rng(0))
        pos_x = np.concatenate([x0[mov], placer.density.fillers.x])
        pos_y = np.concatenate([y0[mov], placer.density.fillers.y])
        with sanitized():
            with pytest.raises(NumericalFault) as err:
                engine.compute(3, pos_x, pos_y, 1.0, 0.0)
        assert err.value.op == "wirelength.grad_x"
        assert err.value.stage == "gradient-engine"
        assert err.value.iteration == 3

    def test_clean_compute_passes(self, netlist):
        from repro.core import Scheduler

        placer = XPlacer(
            netlist, PlacementParams(max_iterations=5, min_iterations=1)
        )
        grid = placer.density.grid
        gamma = Scheduler(placer.params, min(grid.bin_w, grid.bin_h)).gamma
        mov = netlist.movable_index
        x0, y0 = initial_positions(netlist, rng=np.random.default_rng(0))
        pos_x = np.concatenate([x0[mov], placer.density.fillers.x])
        pos_y = np.concatenate([y0[mov], placer.density.fillers.y])
        with sanitized() as s:
            placer.engine.compute(0, pos_x, pos_y, gamma, 0.0)
        assert s.checks > 0 and s.faults == 0


class _DiagnosticRecorder(IterationCallback):
    def __init__(self):
        self.diagnostics = []

    def on_diagnostic(self, info):
        self.diagnostics.append(info)


class TestPlacerGuard:
    def test_divergence_aborts_with_provenance(self, netlist):
        placer = XPlacer(
            netlist, PlacementParams(max_iterations=20, min_iterations=5)
        )
        original = placer.engine.assemble

        def poisoned(result, px, py, lam, sigma=0.0):
            gx, gy = original(result, px, py, lam, sigma)
            if poisoned.calls >= 2:
                gx = gx.copy()
                gx[0] = np.nan
            poisoned.calls += 1
            return gx, gy

        poisoned.calls = 0
        placer.engine.assemble = poisoned
        recorder = _DiagnosticRecorder()
        with pytest.raises(NumericalFault) as err:
            placer.run(callbacks=[recorder])
        fault = err.value
        assert fault.stage == "global-place"
        assert fault.iteration is not None and fault.iteration >= 2
        assert "non-finite cell positions" in str(fault)
        assert len(recorder.diagnostics) == 1
        diag = recorder.diagnostics[0]
        assert diag.design == netlist.name
        assert diag.iteration == fault.iteration
        assert diag.op == fault.op
        # The guard reports how far back a recovery would have to reach.
        assert np.isfinite(diag.best_hpwl)
        assert 0 <= diag.best_iteration < fault.iteration

    def test_sanitize_mode_full_run_is_clean(self, netlist, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        placer = XPlacer(
            netlist, PlacementParams(max_iterations=30, min_iterations=10)
        )
        result = placer.run()
        sanitizer = active()
        assert sanitizer is not None
        assert sanitizer.checks > 0
        assert sanitizer.faults == 0
        assert np.isfinite(result.hpwl)


class TestDiagnosticEvent:
    def test_queue_callback_bridges_diagnostic(self):
        messages = []
        callback = QueueCallback(messages.append, label="job-1")
        callback.on_diagnostic(
            Diagnostic(
                design="d",
                iteration=4,
                stage="global-place",
                op="density.grad",
                message="boom",
            )
        )
        assert messages == [
            {
                "event": "diagnostic",
                "job_id": "job-1",
                "design": "d",
                "iteration": 4,
                "stage": "global-place",
                "op": "density.grad",
                "message": "boom",
                # No best-seen yet: inf is not valid JSON, so None rides.
                "best_hpwl": None,
                "best_iteration": -1,
            }
        ]

    def test_best_seen_hpwl_rides_the_diagnostic(self):
        messages = []
        callback = QueueCallback(messages.append, label="job-1")
        callback.on_diagnostic(
            Diagnostic(
                design="d",
                iteration=9,
                stage="global-place",
                op="optimizer.step",
                message="boom",
                best_hpwl=1234.5,
                best_iteration=7,
            )
        )
        assert messages[0]["best_hpwl"] == 1234.5
        assert messages[0]["best_iteration"] == 7

    def test_event_log_accepts_diagnostic_kind(self, tmp_path):
        from repro.runtime.events import EventLog

        log = EventLog()
        QueueCallback(log, label="job-2").on_diagnostic(
            Diagnostic(
                design="d",
                iteration=1,
                stage="gradient-engine",
                op="wirelength.wa",
                message="m",
            )
        )
        assert log.count("diagnostic") == 1
        event = log.of_kind("diagnostic")[0]
        assert event.payload["op"] == "wirelength.wa"
