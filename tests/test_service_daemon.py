"""The ``repro serve`` daemon: HTTP API, streaming, crash recovery."""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.service import PlacementService, ServiceClient, ServiceError
from repro.service.daemon import make_server

FAKE = "tests.runtime_helpers:fake_pipeline"
SLEEPY = "tests.runtime_helpers:sleepy_pipeline"
CRASHY = "tests.runtime_helpers:crashy_pipeline"
KILLER = "tests.runtime_helpers:killer_pipeline"


def make_spec(seed=1, **overrides):
    spec = dict(
        design="fft_1",
        cells=120,
        seed=seed,
        params={"max_iterations": 30, "min_iterations": 20},
        pipeline=FAKE,
    )
    spec.update(overrides)
    return spec


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on an ephemeral port + a client talking to it."""
    service = PlacementService(str(tmp_path / "state"), workers=2).start()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient("127.0.0.1", server.server_address[1])
    try:
        yield service, client
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


class TestHttpApi:
    def test_health_and_stats(self, daemon):
        _, client = daemon
        health = client.healthz()
        assert health["ok"]
        assert health["status"] == "ok"
        assert health["breakers"] == {"cache": "closed",
                                      "design-store": "closed",
                                      "journal": "closed"}
        assert health["quarantined"] == []
        stats = client.stats()
        assert stats["jobs"] == 0
        assert stats["workers"]["total"] == 2
        for key in ("hits", "misses", "evictions", "bypassed"):
            assert stats["cache"][key] == 0
        assert stats["cache"]["breaker"]["state"] == "closed"
        assert stats["supervisor"]["state"] == "ok"

    def test_submit_wait_report_round_trip(self, daemon):
        _, client = daemon
        entry = client.submit(make_spec(seed=1))
        assert entry["state"] == "queued"
        assert re.match(r"t\d{4}-[0-9a-f]{8}", entry["ticket"])
        final = client.wait(entry["ticket"], timeout=90)
        assert final["state"] == "done"
        assert final["result"]["hpwl"] > 0
        report = client.report(entry["ticket"])
        stage_names = [s["name"]
                       for s in report["result"]["report"]["stages"]]
        assert stage_names[-1] == "runtime"

    def test_served_hpwl_identical_to_direct_execution(self, daemon):
        from repro.runtime import PlacementJob, execute_job

        _, client = daemon
        spec = make_spec(seed=42)
        baseline = execute_job(PlacementJob.from_dict(spec))
        entry = client.submit(spec)
        final = client.wait(entry["ticket"], timeout=90)
        assert final["result"]["hpwl"] == baseline.hpwl

    def test_bad_spec_rejected_with_400(self, daemon):
        _, client = daemon
        with pytest.raises(ServiceError) as err:
            client.submit({"design": "fft_1", "aux": "also-set.aux"})
        assert err.value.status == 400

    def test_unknown_ticket_is_404(self, daemon):
        _, client = daemon
        with pytest.raises(ServiceError) as err:
            client.job("t9999-deadbeef")
        assert err.value.status == 404

    def test_priority_and_tenant_wrapper(self, daemon):
        _, client = daemon
        entry = client.submit(make_spec(seed=1), priority=4, tenant="ci")
        assert entry["priority"] == 4
        assert entry["tenant"] == "ci"

    def test_four_concurrent_jobs_with_live_streams(self, daemon):
        _, client = daemon
        specs = [make_spec(seed=s) for s in (1, 2, 3, 4)]
        tickets = [client.submit(spec)["ticket"] for spec in specs]
        streams = {}

        def follow(ticket):
            streams[ticket] = [ev["kind"] for ev
                               in client.stream_events(ticket)]

        followers = [threading.Thread(target=follow, args=(t,))
                     for t in tickets]
        for thread in followers:
            thread.start()
        finals = [client.wait(t, timeout=120) for t in tickets]
        for thread in followers:
            thread.join(timeout=30)
        assert [f["state"] for f in finals] == ["done"] * 4
        hpwls = {f["result"]["hpwl"] for f in finals}
        assert len(hpwls) == 4          # four seeds, four placements
        for ticket in tickets:
            kinds = streams[ticket]
            assert "queued" in kinds
            assert "started" in kinds
            assert "finished" in kinds

    def test_dedupe_and_cache_hit_paths(self, daemon):
        _, client = daemon
        spec = make_spec(seed=7)
        leader = client.submit(spec)
        follower = client.submit(spec)          # identical, in flight
        assert follower["deduped_onto"] == leader["ticket"]
        a = client.wait(leader["ticket"], timeout=90)
        b = client.wait(follower["ticket"], timeout=90)
        assert a["result"]["hpwl"] == b["result"]["hpwl"]
        assert not b["result"]["cached"]        # shared execution
        # terminal now: a resubmission is served by the result cache.
        third = client.submit(spec)
        c = client.wait(third["ticket"], timeout=30)
        assert c["result"]["cached"]
        assert c["result"]["hpwl"] == a["result"]["hpwl"]
        assert client.stats()["cache"]["hits"] >= 1

    def test_cancel_queued_job(self, daemon):
        service, client = daemon
        # saturate both workers so a third submission stays queued
        blockers = [client.submit(make_spec(seed=s, pipeline=SLEEPY))
                    for s in (1, 2)]
        queued = client.submit(make_spec(seed=3))
        out = client.cancel(queued["ticket"])
        assert out["cancel"] in ("cancelled", "requested")
        final = client.wait(queued["ticket"], timeout=15)
        assert final["state"] == "cancelled"
        for blocker in blockers:
            client.cancel(blocker["ticket"])

    def test_cancel_running_job_kills_worker(self, daemon):
        service, client = daemon
        if service.pool.inline:
            pytest.skip("thread fallback cannot kill a sleeping stage")
        entry = client.submit(make_spec(seed=1, pipeline=SLEEPY))
        deadline = time.monotonic() + 30
        while (client.job(entry["ticket"])["state"] != "running"
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert client.cancel(entry["ticket"])["cancel"] == "requested"
        final = client.wait(entry["ticket"], timeout=30)
        assert final["state"] == "cancelled"
        # the pool respawned: new work still completes
        after = client.submit(make_spec(seed=9))
        assert client.wait(after["ticket"], timeout=90)["state"] == "done"

    def test_stage_failure_reported(self, daemon):
        _, client = daemon
        entry = client.submit(make_spec(seed=1, pipeline=CRASHY))
        final = client.wait(entry["ticket"], timeout=90)
        assert final["state"] == "failed"
        assert "injected stage crash" in final["result"]["error"]

    def test_event_snapshot_without_follow(self, daemon):
        _, client = daemon
        entry = client.submit(make_spec(seed=1))
        client.wait(entry["ticket"], timeout=90)
        events = client.events(entry["ticket"])
        kinds = [ev["kind"] for ev in events]
        assert kinds[0] == "queued"
        assert "finished" in kinds
        assert all(ev["ticket"] == entry["ticket"] for ev in events)


class TestSupervisionApi:
    def test_draining_healthz_503_and_shed(self, daemon):
        service, client = daemon
        service.supervisor.drain()
        with pytest.raises(ServiceError) as err:
            client.healthz()
        assert err.value.status == 503
        assert err.value.body["status"] == "draining"
        assert not err.value.body["ok"]
        with pytest.raises(ServiceError) as err:
            client.submit(make_spec(seed=31), priority=5)
        assert err.value.status == 503
        assert err.value.body["state"] == "draining"
        assert err.value.retry_after is not None \
            and err.value.retry_after >= 1

    def test_degraded_sheds_low_priority_only(self, daemon):
        service, client = daemon
        breaker = service.supervisor.breakers["cache"]
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        health = client.healthz()               # degraded still answers 200
        assert health["status"] == "degraded" and not health["ok"]
        assert health["breakers"]["cache"] == "open"
        assert "last_fsync_age_s" in health["journal"]
        with pytest.raises(ServiceError) as err:
            client.submit(make_spec(seed=32), priority=0)
        assert err.value.status == 503
        assert err.value.body["state"] == "degraded"
        entry = client.submit(make_spec(seed=32), priority=1)
        assert client.wait(entry["ticket"], timeout=90)["state"] == "done"
        assert client.stats()["supervisor"]["counters"]["shed"] == 1

    def test_crash_retry_event_surfaces_backoff(self, daemon):
        _, client = daemon
        entry = client.submit(make_spec(seed=33, pipeline=KILLER,
                                        retries=1))
        final = client.wait(entry["ticket"], timeout=90)
        assert final["state"] == "failed"       # both attempts die
        retries = [ev for ev in client.events(entry["ticket"])
                   if ev["kind"] == "retry"]
        assert retries, "worker crash produced no retry event"
        for ev in retries:
            assert ev["reason"] == "crash"
            assert ev["backoff"] >= 0
            assert ev["max_backoff"] is None or ev["max_backoff"] > 0
            assert ev["attempt"] >= 1


class TestJournal:
    def test_concurrent_terminal_sweeps_journal_once(self, tmp_path):
        """The terminal sweep runs from the drive loop and from HTTP
        cancel threads; racing sweeps must not double-journal a
        ticket."""
        from types import SimpleNamespace

        service = PlacementService(str(tmp_path / "state"))
        entries = [
            SimpleNamespace(terminal=True, ticket=f"t{i}", state="done",
                            job=SimpleNamespace(job_id=f"j{i}"))
            for i in range(16)
        ]
        service.scheduler.entries = lambda: entries
        threads = [
            threading.Thread(target=service._journal_terminals)
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        with open(service._journal_path) as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        terminal = [r["ticket"] for r in records if r["op"] == "terminal"]
        assert sorted(terminal) == sorted(e.ticket for e in entries)


class TestRecovery:
    def test_graceful_stop_resumes_on_restart(self, tmp_path):
        state = str(tmp_path / "state")
        service = PlacementService(state, workers=1).start()
        spec = make_spec(seed=1, pipeline=SLEEPY)
        entry = service.submit(spec)
        deadline = time.monotonic() + 30
        while (service.get(entry.ticket).state != "running"
               and time.monotonic() < deadline):
            time.sleep(0.05)
        service.stop()                      # job never reached terminal
        revived = PlacementService(state, workers=1)
        revived._replay_journal()
        try:
            assert entry.ticket in revived.recovered
            recovered = revived.scheduler.get(entry.ticket)
            assert recovered.resume
            assert recovered.state == "queued"
            kinds = [e.kind for e in revived.events.events]
            assert "recovery" in kinds
        finally:
            revived.scheduler.close()

    def test_terminal_jobs_not_resubmitted(self, tmp_path):
        state = str(tmp_path / "state")
        service = PlacementService(state, workers=1).start()
        entry = service.submit(make_spec(seed=1))
        assert service.wait([entry.ticket], timeout=90)
        service.stop()
        revived = PlacementService(state, workers=1)
        revived._replay_journal()
        try:
            assert revived.recovered == []
            assert revived.scheduler.get(entry.ticket) is None
        finally:
            revived.scheduler.close()

    def test_torn_journal_tail_is_ignored(self, tmp_path):
        state = str(tmp_path / "state")
        service = PlacementService(state, workers=1).start()
        entry = service.submit(make_spec(seed=1, pipeline=SLEEPY))
        service.stop()
        with open(os.path.join(state, "journal.jsonl"), "a") as fh:
            fh.write('{"op": "submit", "ticket": "t9')    # torn write
        revived = PlacementService(state, workers=1)
        revived._replay_journal()
        try:
            assert revived.recovered == [entry.ticket]
        finally:
            revived.scheduler.close()


class TestKillDashNine:
    """The full crash story: SIGKILL the daemon process mid-job, restart
    it on the same state dir, and watch the job finish from checkpoint."""

    def _start(self, state):
        existing = os.environ.get("PYTHONPATH")
        parts = ["src", "."] + ([existing] if existing else [])
        env = {**os.environ, "PYTHONPATH": os.pathsep.join(parts)}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--state-dir", state, "--port", "0", "--workers", "1"],
            env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        banner = proc.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        assert match, f"no port announced: {banner!r}"
        return proc, int(match.group(1))

    def test_sigkill_restart_resumes_from_checkpoint(self, tmp_path):
        state = str(tmp_path / "state")
        proc, port = self._start(state)
        try:
            client = ServiceClient("127.0.0.1", port)
            # a real GP run, long enough to checkpoint before the kill
            entry = client.submit({
                "design": "fft_1", "cells": 150, "seed": 11,
                "params": {"min_iterations": 2, "max_iterations": 3000},
            })
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                events = client.events(entry["ticket"])
                if any(ev["kind"] == "recovery"
                       and ev.get("action") == "checkpoint"
                       for ev in events):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("job never checkpointed")
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        proc2, port2 = self._start(state)
        try:
            client2 = ServiceClient("127.0.0.1", port2)
            jobs = client2.jobs()
            assert [j["ticket"] for j in jobs] == [entry["ticket"]]
            final = client2.wait(entry["ticket"], timeout=300, poll=0.25)
            assert final["state"] == "done"
            assert final["result"]["hpwl"] > 0
            events = client2.events(entry["ticket"])
            kinds = [ev["kind"] for ev in events]
            assert "recovery" in kinds          # resubmitted + resumed
            resumed = [ev for ev in events
                       if ev["kind"] == "recovery"
                       and ev.get("action") == "resubmitted"]
            assert resumed and resumed[0].get("resume")
        finally:
            proc2.send_signal(signal.SIGTERM)
            try:
                proc2.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc2.kill()


@pytest.fixture
def throttled_daemon(tmp_path):
    """A daemon with one worker and a per-tenant queue depth of 1."""
    service = PlacementService(str(tmp_path / "state"), workers=1,
                               max_queue_depth=1).start()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient("127.0.0.1", server.server_address[1])
    try:
        yield service, client
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


class TestBackpressureHttp:
    def saturate(self, client):
        """One running sleeper + one queued job fills the depth-1 queue."""
        running = client.submit(make_spec(seed=1, pipeline=SLEEPY))
        deadline = time.monotonic() + 30
        while (client.job(running["ticket"])["state"] != "running"
               and time.monotonic() < deadline):
            time.sleep(0.05)
        queued = client.submit(make_spec(seed=2, pipeline=SLEEPY))
        return running, queued

    def test_full_queue_returns_429_with_retry_after(self, throttled_daemon):
        _, client = throttled_daemon
        running, queued = self.saturate(client)
        with pytest.raises(ServiceError) as exc:
            client.submit(make_spec(seed=3))
        err = exc.value
        assert err.status == 429
        assert err.body["tenant"] == "default"
        assert err.body["queue_depth"] == 1
        assert err.body["queue_limit"] == 1
        assert err.body["retry_after_s"] > 0
        assert err.retry_after is not None and err.retry_after >= 1
        for entry in (queued, running):
            client.cancel(entry["ticket"])

    def test_rejected_submission_not_journaled(self, throttled_daemon):
        service, client = throttled_daemon
        running, queued = self.saturate(client)
        with pytest.raises(ServiceError):
            client.submit(make_spec(seed=3))
        tickets = {j["ticket"] for j in client.jobs()}
        assert tickets == {running["ticket"], queued["ticket"]}
        for entry in (queued, running):
            client.cancel(entry["ticket"])

    def test_queue_depth_in_stats(self, throttled_daemon):
        _, client = throttled_daemon
        running, queued = self.saturate(client)
        stats = client.stats()
        assert stats["queued_per_tenant"] == {"default": 1}
        assert stats["queue_limits"]["default"] == 1
        for entry in (queued, running):
            client.cancel(entry["ticket"])


class TestGroupCancelHttp:
    def test_cancel_group_route(self, daemon):
        service, client = daemon
        # Two sleepers occupy both workers; two more queue behind them.
        jobs = [client.submit(make_spec(seed=s, pipeline=SLEEPY),
                              group="cohort-a")
                for s in (1, 2, 3, 4)]
        loose = client.submit(make_spec(seed=9, pipeline=SLEEPY),
                              group="cohort-b")
        out = client.cancel_group("cohort-a")
        assert out["group"] == "cohort-a"
        assert out["cancelled"] + out["requested"] == 4
        for entry in jobs:
            final = client.wait(entry["ticket"], timeout=30)
            assert final["state"] == "cancelled"
        # The other cohort is untouched.
        assert not client.job(loose["ticket"])["terminal"]
        client.cancel(loose["ticket"])

    def test_group_round_trips_through_journal(self, tmp_path):
        state = str(tmp_path / "state")
        service = PlacementService(state, workers=1).start()
        entry = service.submit({"job": make_spec(seed=1, pipeline=SLEEPY),
                                "group": "cohort-r"})
        assert entry.group == "cohort-r"
        service.stop()
        revived = PlacementService(state, workers=1).start()
        try:
            again = revived.get(entry.ticket)
            assert again is not None and again.group == "cohort-r"
            revived.cancel_group("cohort-r")
            deadline = time.monotonic() + 30
            while (not revived.get(entry.ticket).terminal
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert revived.get(entry.ticket).state == "cancelled"
        finally:
            revived.stop()
