"""Journal durability, degraded buffering, and corruption recovery."""

import json
import os

from repro.service.journal import Journal, read_journal
from repro.supervision import CircuitBreaker


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _submit(ticket, job_id="job-x"):
    return {"op": "submit", "ticket": ticket,
            "job": {"job_id": job_id, "design": "fft_1"},
            "priority": 0, "tenant": None, "group": None}


def _terminal(ticket, state="done"):
    return {"op": "terminal", "ticket": ticket, "state": state,
            "job_id": "job-x"}


class TestJournalDurability:
    def test_append_reaches_disk(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path, clock=FakeClock(5.0))
        assert journal.append(_submit("t1"))
        lines = open(path).read().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["op"] == "submit" and record["ts"] == 5.0
        assert journal.last_fsync_age() == 0.0

    def test_oserror_buffers_and_trips(self, tmp_path):
        clock = FakeClock()
        breaker = CircuitBreaker("journal", failure_threshold=1,
                                 cooldown=10.0, clock=clock)
        fail = {"on": True}

        def hook(op):
            if fail["on"]:
                raise OSError("fsync lost the disk")

        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path, breaker=breaker, fault_hook=hook,
                          clock=clock)
        assert not journal.append(_submit("t1"))
        assert breaker.state == "open"
        assert journal.buffered == 1
        # While open: straight to the buffer, no disk attempt.
        assert not journal.append(_submit("t2"))
        assert journal.buffered == 2
        assert not os.path.exists(path)
        # Disk heals; after cooldown the half-open probe flushes the
        # whole backlog in order.
        fail["on"] = False
        clock.advance(10.0)
        assert journal.append(_terminal("t1"))
        assert breaker.state == "closed"
        assert journal.buffered == 0
        tickets = [json.loads(line)["ticket"]
                   for line in open(path).read().splitlines()]
        assert tickets == ["t1", "t2", "t1"]

    def test_bounded_loss_window(self, tmp_path):
        breaker = CircuitBreaker("journal", failure_threshold=1,
                                 cooldown=1e9, clock=FakeClock())
        breaker.record_failure()               # pin open
        journal = Journal(str(tmp_path / "j.jsonl"), breaker=breaker,
                          max_buffered=2, clock=FakeClock())
        for i in range(5):
            journal.append(_submit(f"t{i}"))
        assert journal.buffered == 2           # oldest spilled
        assert journal.dropped == 3
        assert journal.stats()["dropped"] == 3

    def test_slow_fsync_is_durable_but_counts(self, tmp_path):
        import time as _time

        breaker = CircuitBreaker("journal", failure_threshold=1,
                                 cooldown=1e9, clock=FakeClock())
        journal = Journal(str(tmp_path / "j.jsonl"), breaker=breaker,
                          fault_hook=lambda op: _time.sleep(0.05),
                          slow_op_seconds=0.01, clock=FakeClock())
        assert journal.append(_submit("t1"))   # landed...
        assert breaker.state == "open"         # ...but tripped the breaker

    def test_flush_drains_backlog(self, tmp_path):
        breaker = CircuitBreaker("journal", failure_threshold=1,
                                 cooldown=1e9, clock=FakeClock())
        breaker.record_failure()
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path, breaker=breaker, clock=FakeClock())
        journal.append(_submit("t1"))
        assert journal.flush()
        assert journal.buffered == 0
        assert json.loads(open(path).read())["ticket"] == "t1"


def _write_lines(path, lines):
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")


class TestCorruptionRecovery:
    """Satellite (d): every corruption class folds into one consistent
    ticket table."""

    def test_truncated_tail(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        whole = json.dumps(_submit("t2"))
        _write_lines(path, [
            json.dumps(_submit("t1")),
            json.dumps(_terminal("t1")),
            whole[: len(whole) // 2],          # torn mid-write by a crash
        ])
        replay = read_journal(path)
        assert replay.pending() == []
        assert replay.dropped == 1
        assert "t1" in replay.finished

    def test_interleaved_partial_record(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        _write_lines(path, [
            json.dumps(_submit("t1")),
            json.dumps({"op": "submit", "ticket": "t2"}),   # no job payload
            json.dumps({"op": "terminal"}),                 # no ticket
            json.dumps(_submit("t3")),
        ])
        replay = read_journal(path)
        assert replay.pending() == ["t1", "t3"]
        assert replay.dropped == 2

    def test_duplicated_terminal_record(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        _write_lines(path, [
            json.dumps(_submit("t1")),
            json.dumps(_terminal("t1")),
            json.dumps(_terminal("t1")),       # replayed buffer duplicate
        ])
        replay = read_journal(path)
        assert replay.pending() == []
        assert replay.duplicate_terminals == 1
        assert replay.dropped == 0

    def test_unknown_op_and_non_dict_lines(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        _write_lines(path, [
            json.dumps(_submit("t1")),
            json.dumps({"op": "vacuum"}),
            json.dumps([1, 2, 3]),
            "",
        ])
        replay = read_journal(path)
        assert replay.pending() == ["t1"]
        assert replay.dropped == 2

    def test_pending_preserves_submission_order(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        _write_lines(path, [
            json.dumps(_submit("b")),
            json.dumps(_submit("a")),
            json.dumps(_submit("c")),
            json.dumps(_terminal("a")),
        ])
        replay = read_journal(path)
        assert replay.pending() == ["b", "c"]

    def test_missing_file(self, tmp_path):
        replay = read_journal(str(tmp_path / "nope.jsonl"))
        assert replay.pending() == []
        assert replay.dropped == 0
