"""Scheduler core: priorities, quotas, dedupe, cancellation, lifecycle."""

import threading
import time

import pytest

from repro.runtime import EventLog, JobResult, PlacementJob, ResultCache
from repro.service import Scheduler

FAKE = "tests.runtime_helpers:fake_pipeline"


def make_job(seed=1, **overrides):
    base = dict(
        design="fft_1",
        cells=250,
        seed=seed,
        params={"max_iterations": 30, "min_iterations": 20},
        pipeline=FAKE,
    )
    base.update(overrides)
    return PlacementJob(**base)


def done_result(job, hpwl=100.0):
    return JobResult(job_id=job.job_id, status="done",
                     seed=job.effective_seed(), hpwl=hpwl, seconds=0.01)


class TestLifecycle:
    def test_submit_lease_finish(self):
        sched = Scheduler()
        entry = sched.submit(make_job(seed=1))
        assert entry.state == "queued"
        assert not entry.terminal
        leased = sched.lease()
        assert leased is entry
        assert leased.state == "running"
        assert leased.attempts == 1
        sched.finish(leased, done_result(leased.job))
        assert entry.state == "done"
        assert entry.terminal
        assert entry.result.ok

    def test_lease_empty_queue_returns_none(self):
        assert Scheduler().lease() is None

    def test_fifo_within_equal_priority(self):
        sched = Scheduler()
        entries = [sched.submit(make_job(seed=s)) for s in (1, 2, 3)]
        leased = [sched.lease() for _ in range(3)]
        assert [e.ticket for e in leased] == [e.ticket for e in entries]

    def test_higher_priority_leases_first(self):
        sched = Scheduler()
        low = sched.submit(make_job(seed=1), priority=0)
        high = sched.submit(make_job(seed=2), priority=5)
        assert sched.lease() is high
        assert sched.lease() is low

    def test_blocking_lease_wakes_on_submit(self):
        sched = Scheduler()
        got = []

        def leaser():
            got.append(sched.lease(timeout=5.0))

        t = threading.Thread(target=leaser)
        t.start()
        time.sleep(0.05)
        entry = sched.submit(make_job(seed=1))
        t.join(timeout=5.0)
        assert got and got[0] is entry

    def test_wait_for_terminal(self):
        sched = Scheduler()
        entry = sched.submit(make_job(seed=1))
        assert not sched.wait(timeout=0.05)
        leased = sched.lease()
        sched.finish(leased, done_result(leased.job))
        assert sched.wait(timeout=1.0)
        assert sched.wait([entry.ticket], timeout=0.0)

    def test_failed_statuses_map_to_failed_state(self):
        for status in ("failed", "timeout", "interrupted"):
            sched = Scheduler()
            entry = sched.submit(make_job(seed=1))
            leased = sched.lease()
            sched.finish(leased, JobResult(
                job_id=leased.job.job_id, status=status,
                seed=1, error="boom"))
            assert entry.state == "failed"

    def test_closed_scheduler_rejects_submissions(self):
        sched = Scheduler()
        sched.close()
        with pytest.raises(RuntimeError):
            sched.submit(make_job(seed=1))


class TestPrioritiesAndQuotas:
    def test_tenant_quota_blocks_lease(self):
        sched = Scheduler(quotas={"ci": 1})
        first = sched.submit(make_job(seed=1), tenant="ci")
        sched.submit(make_job(seed=2), tenant="ci")
        leased = sched.lease()
        assert leased is first
        # ci is at quota: nothing leasable despite queue depth 1.
        assert sched.lease() is None
        sched.finish(leased, done_result(leased.job))
        assert sched.lease() is not None

    def test_quota_applies_per_tenant(self):
        sched = Scheduler(quotas={"ci": 1})
        sched.submit(make_job(seed=1), tenant="ci")
        other = sched.submit(make_job(seed=2), tenant="adhoc")
        assert sched.lease() is not None      # ci:1 runs
        assert sched.lease() is other         # adhoc unaffected

    def test_default_quota_covers_unlisted_tenants(self):
        sched = Scheduler(default_quota=1)
        sched.submit(make_job(seed=1))
        sched.submit(make_job(seed=2))
        assert sched.lease() is not None
        assert sched.lease() is None

    def test_requeue_backoff_gates_lease(self):
        sched = Scheduler()
        sched.submit(make_job(seed=1))
        leased = sched.lease()
        sched.requeue(leased, delay=0.2, resume=True)
        assert leased.state == "queued"
        assert sched.lease() is None          # still inside the gate
        time.sleep(0.25)
        again = sched.lease()
        assert again is leased
        assert again.resume
        assert again.attempts == 2

    def test_requeued_entry_beats_fresh_submissions(self):
        sched = Scheduler()
        first = sched.submit(make_job(seed=1))
        sched.submit(make_job(seed=2))
        leased = sched.lease()
        sched.requeue(leased, delay=0.0)
        assert sched.lease() is first         # retry goes to the front


class TestDedupe:
    def test_identical_inflight_submission_coalesces(self):
        log = EventLog()
        sched = Scheduler(events=log)
        leader = sched.submit(make_job(seed=1))
        follower = sched.submit(make_job(seed=1))
        assert follower.deduped_onto == leader.ticket
        assert follower.state == "queued"
        # Only the leader is leasable.
        assert sched.lease() is leader
        assert sched.lease() is None
        sched.finish(leader, done_result(leader.job, hpwl=42.0))
        assert follower.terminal
        assert follower.result.hpwl == 42.0
        assert log.count("deduped") == 1

    def test_different_seeds_do_not_coalesce(self):
        sched = Scheduler()
        sched.submit(make_job(seed=1))
        follower = sched.submit(make_job(seed=2))
        assert follower.deduped_onto is None

    def test_resubmit_after_terminal_runs_again(self):
        sched = Scheduler()
        leader = sched.submit(make_job(seed=1))
        leased = sched.lease()
        sched.finish(leased, done_result(leased.job))
        fresh = sched.submit(make_job(seed=1))
        assert fresh.deduped_onto is None
        assert sched.lease() is fresh

    def test_dedupe_off_for_batch_parity(self):
        sched = Scheduler(dedupe=False)
        sched.submit(make_job(seed=1))
        follower = sched.submit(make_job(seed=1))
        assert follower.deduped_onto is None
        assert sched.lease() is not None
        assert sched.lease() is follower

    def test_failed_leader_fails_followers(self):
        sched = Scheduler()
        leader = sched.submit(make_job(seed=1))
        follower = sched.submit(make_job(seed=1))
        leased = sched.lease()
        sched.finish(leased, JobResult(
            job_id=leader.job.job_id, status="failed", seed=1,
            error="boom"))
        assert follower.state == "failed"
        assert "boom" in follower.result.error


class TestCancellation:
    def test_cancel_queued_is_immediate(self):
        log = EventLog()
        sched = Scheduler(events=log)
        entry = sched.submit(make_job(seed=1))
        assert sched.cancel(entry.ticket) == "cancelled"
        assert entry.state == "cancelled"
        assert entry.result.status == "cancelled"
        assert log.count("cancelled") == 1
        assert sched.lease() is None

    def test_cancel_running_is_cooperative(self):
        sched = Scheduler()
        entry = sched.submit(make_job(seed=1))
        leased = sched.lease()
        assert sched.cancel(entry.ticket) == "requested"
        assert leased.cancel_requested
        assert not leased.terminal
        sched.mark_cancelled(leased)
        assert entry.state == "cancelled"

    def test_cancel_unknown_or_terminal_returns_none(self):
        sched = Scheduler()
        assert sched.cancel("nope") is None
        entry = sched.submit(make_job(seed=1))
        leased = sched.lease()
        sched.finish(leased, done_result(leased.job))
        assert sched.cancel(entry.ticket) is None


class TestCacheIntegration:
    def test_cache_lookup_short_circuits(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job = make_job(seed=1)
        from repro.runtime import execute_job

        cache.put(job, execute_job(job))
        log = EventLog()
        sched = Scheduler(cache=cache, events=log)
        entry = sched.submit(make_job(seed=1))
        leased = sched.lease()
        hit = sched.cache_lookup(leased)
        assert hit is not None and hit.cached
        assert entry.state == "done"
        assert log.count("cached") == 1

    def test_cache_miss_returns_none_and_keeps_running(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        sched = Scheduler(cache=cache)
        entry = sched.submit(make_job(seed=1))
        leased = sched.lease()
        assert sched.cache_lookup(leased) is None
        assert entry.state == "running"


class TestIntrospection:
    def test_stats_counts_states(self):
        sched = Scheduler()
        sched.submit(make_job(seed=1))
        e2 = sched.submit(make_job(seed=2))
        leased = sched.lease()
        sched.finish(leased, done_result(leased.job))
        sched.cancel(e2.ticket)
        stats = sched.stats()
        assert stats["jobs"] == 2
        assert stats["states"]["done"] == 1
        assert stats["states"]["cancelled"] == 1
        assert stats["queue_depth"] == 0

    def test_to_dict_is_json_view(self):
        sched = Scheduler()
        entry = sched.submit(make_job(seed=1), priority=3, tenant="ci")
        view = entry.to_dict()
        assert view["state"] == "queued"
        assert view["terminal"] is False
        assert view["priority"] == 3
        assert view["tenant"] == "ci"
        assert view["job_id"] == entry.job.job_id
        assert "result" not in view

    def test_entries_and_results_in_submission_order(self):
        sched = Scheduler()
        sched.submit(make_job(seed=2), priority=9)
        sched.submit(make_job(seed=1), priority=0)
        seeds = [e.job.effective_seed() for e in sched.entries()]
        assert seeds == [2, 1]
        assert sched.results() == [None, None]
