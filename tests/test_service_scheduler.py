"""Scheduler core: priorities, quotas, dedupe, cancellation, lifecycle."""

import threading
import time

import pytest

from repro.runtime import EventLog, JobResult, PlacementJob, ResultCache
from repro.service import QueueFull, Scheduler

FAKE = "tests.runtime_helpers:fake_pipeline"


def make_job(seed=1, **overrides):
    base = dict(
        design="fft_1",
        cells=250,
        seed=seed,
        params={"max_iterations": 30, "min_iterations": 20},
        pipeline=FAKE,
    )
    base.update(overrides)
    return PlacementJob(**base)


def done_result(job, hpwl=100.0):
    return JobResult(job_id=job.job_id, status="done",
                     seed=job.effective_seed(), hpwl=hpwl, seconds=0.01)


class TestThreadSafety:
    def test_get_and_closed_during_concurrent_submit(self):
        """HTTP handler threads call get()/closed while the submit path
        mutates the entry table under the scheduler condition."""
        sched = Scheduler()
        errors = []
        tickets = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    assert not sched.closed
                    for ticket in list(tickets):
                        assert sched.get(ticket) is not None
                    assert sched.get("no-such-ticket") is None
                except Exception as err:  # noqa: BLE001 — the assertion
                    errors.append(err)
                    return

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            for seed in range(50):
                tickets.append(sched.submit(make_job(seed=seed)).ticket)
        finally:
            stop.set()
            thread.join(timeout=10)
        assert errors == []
        sched.close()
        assert sched.closed


class TestLifecycle:
    def test_submit_lease_finish(self):
        sched = Scheduler()
        entry = sched.submit(make_job(seed=1))
        assert entry.state == "queued"
        assert not entry.terminal
        leased = sched.lease()
        assert leased is entry
        assert leased.state == "running"
        assert leased.attempts == 1
        sched.finish(leased, done_result(leased.job))
        assert entry.state == "done"
        assert entry.terminal
        assert entry.result.ok

    def test_lease_empty_queue_returns_none(self):
        assert Scheduler().lease() is None

    def test_fifo_within_equal_priority(self):
        sched = Scheduler()
        entries = [sched.submit(make_job(seed=s)) for s in (1, 2, 3)]
        leased = [sched.lease() for _ in range(3)]
        assert [e.ticket for e in leased] == [e.ticket for e in entries]

    def test_higher_priority_leases_first(self):
        sched = Scheduler()
        low = sched.submit(make_job(seed=1), priority=0)
        high = sched.submit(make_job(seed=2), priority=5)
        assert sched.lease() is high
        assert sched.lease() is low

    def test_blocking_lease_wakes_on_submit(self):
        sched = Scheduler()
        got = []

        def leaser():
            got.append(sched.lease(timeout=5.0))

        t = threading.Thread(target=leaser)
        t.start()
        time.sleep(0.05)
        entry = sched.submit(make_job(seed=1))
        t.join(timeout=5.0)
        assert got and got[0] is entry

    def test_wait_for_terminal(self):
        sched = Scheduler()
        entry = sched.submit(make_job(seed=1))
        assert not sched.wait(timeout=0.05)
        leased = sched.lease()
        sched.finish(leased, done_result(leased.job))
        assert sched.wait(timeout=1.0)
        assert sched.wait([entry.ticket], timeout=0.0)

    def test_failed_statuses_map_to_failed_state(self):
        for status in ("failed", "timeout", "interrupted"):
            sched = Scheduler()
            entry = sched.submit(make_job(seed=1))
            leased = sched.lease()
            sched.finish(leased, JobResult(
                job_id=leased.job.job_id, status=status,
                seed=1, error="boom"))
            assert entry.state == "failed"

    def test_closed_scheduler_rejects_submissions(self):
        sched = Scheduler()
        sched.close()
        with pytest.raises(RuntimeError):
            sched.submit(make_job(seed=1))


class TestPrioritiesAndQuotas:
    def test_tenant_quota_blocks_lease(self):
        sched = Scheduler(quotas={"ci": 1})
        first = sched.submit(make_job(seed=1), tenant="ci")
        sched.submit(make_job(seed=2), tenant="ci")
        leased = sched.lease()
        assert leased is first
        # ci is at quota: nothing leasable despite queue depth 1.
        assert sched.lease() is None
        sched.finish(leased, done_result(leased.job))
        assert sched.lease() is not None

    def test_quota_applies_per_tenant(self):
        sched = Scheduler(quotas={"ci": 1})
        sched.submit(make_job(seed=1), tenant="ci")
        other = sched.submit(make_job(seed=2), tenant="adhoc")
        assert sched.lease() is not None      # ci:1 runs
        assert sched.lease() is other         # adhoc unaffected

    def test_default_quota_covers_unlisted_tenants(self):
        sched = Scheduler(default_quota=1)
        sched.submit(make_job(seed=1))
        sched.submit(make_job(seed=2))
        assert sched.lease() is not None
        assert sched.lease() is None

    def test_requeue_backoff_gates_lease(self):
        sched = Scheduler()
        sched.submit(make_job(seed=1))
        leased = sched.lease()
        sched.requeue(leased, delay=0.2, resume=True)
        assert leased.state == "queued"
        assert sched.lease() is None          # still inside the gate
        time.sleep(0.25)
        again = sched.lease()
        assert again is leased
        assert again.resume
        assert again.attempts == 2

    def test_requeued_entry_beats_fresh_submissions(self):
        sched = Scheduler()
        first = sched.submit(make_job(seed=1))
        sched.submit(make_job(seed=2))
        leased = sched.lease()
        sched.requeue(leased, delay=0.0)
        assert sched.lease() is first         # retry goes to the front


class TestDedupe:
    def test_identical_inflight_submission_coalesces(self):
        log = EventLog()
        sched = Scheduler(events=log)
        leader = sched.submit(make_job(seed=1))
        follower = sched.submit(make_job(seed=1))
        assert follower.deduped_onto == leader.ticket
        assert follower.state == "queued"
        # Only the leader is leasable.
        assert sched.lease() is leader
        assert sched.lease() is None
        sched.finish(leader, done_result(leader.job, hpwl=42.0))
        assert follower.terminal
        assert follower.result.hpwl == 42.0
        assert log.count("deduped") == 1

    def test_different_seeds_do_not_coalesce(self):
        sched = Scheduler()
        sched.submit(make_job(seed=1))
        follower = sched.submit(make_job(seed=2))
        assert follower.deduped_onto is None

    def test_resubmit_after_terminal_runs_again(self):
        sched = Scheduler()
        leader = sched.submit(make_job(seed=1))
        leased = sched.lease()
        sched.finish(leased, done_result(leased.job))
        fresh = sched.submit(make_job(seed=1))
        assert fresh.deduped_onto is None
        assert sched.lease() is fresh

    def test_dedupe_off_for_batch_parity(self):
        sched = Scheduler(dedupe=False)
        sched.submit(make_job(seed=1))
        follower = sched.submit(make_job(seed=1))
        assert follower.deduped_onto is None
        assert sched.lease() is not None
        assert sched.lease() is follower

    def test_failed_leader_fails_followers(self):
        sched = Scheduler()
        leader = sched.submit(make_job(seed=1))
        follower = sched.submit(make_job(seed=1))
        leased = sched.lease()
        sched.finish(leased, JobResult(
            job_id=leader.job.job_id, status="failed", seed=1,
            error="boom"))
        assert follower.state == "failed"
        assert "boom" in follower.result.error


class TestCancellation:
    def test_cancel_queued_is_immediate(self):
        log = EventLog()
        sched = Scheduler(events=log)
        entry = sched.submit(make_job(seed=1))
        assert sched.cancel(entry.ticket) == "cancelled"
        assert entry.state == "cancelled"
        assert entry.result.status == "cancelled"
        assert log.count("cancelled") == 1
        assert sched.lease() is None

    def test_cancel_running_is_cooperative(self):
        sched = Scheduler()
        entry = sched.submit(make_job(seed=1))
        leased = sched.lease()
        assert sched.cancel(entry.ticket) == "requested"
        assert leased.cancel_requested
        assert not leased.terminal
        sched.mark_cancelled(leased)
        assert entry.state == "cancelled"

    def test_cancel_unknown_or_terminal_returns_none(self):
        sched = Scheduler()
        assert sched.cancel("nope") is None
        entry = sched.submit(make_job(seed=1))
        leased = sched.lease()
        sched.finish(leased, done_result(leased.job))
        assert sched.cancel(entry.ticket) is None


class TestCacheIntegration:
    def test_cache_lookup_short_circuits(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job = make_job(seed=1)
        from repro.runtime import execute_job

        cache.put(job, execute_job(job))
        log = EventLog()
        sched = Scheduler(cache=cache, events=log)
        entry = sched.submit(make_job(seed=1))
        leased = sched.lease()
        hit = sched.cache_lookup(leased)
        assert hit is not None and hit.cached
        assert entry.state == "done"
        assert log.count("cached") == 1

    def test_cache_miss_returns_none_and_keeps_running(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        sched = Scheduler(cache=cache)
        entry = sched.submit(make_job(seed=1))
        leased = sched.lease()
        assert sched.cache_lookup(leased) is None
        assert entry.state == "running"


class TestIntrospection:
    def test_stats_counts_states(self):
        sched = Scheduler()
        sched.submit(make_job(seed=1))
        e2 = sched.submit(make_job(seed=2))
        leased = sched.lease()
        sched.finish(leased, done_result(leased.job))
        sched.cancel(e2.ticket)
        stats = sched.stats()
        assert stats["jobs"] == 2
        assert stats["states"]["done"] == 1
        assert stats["states"]["cancelled"] == 1
        assert stats["queue_depth"] == 0

    def test_to_dict_is_json_view(self):
        sched = Scheduler()
        entry = sched.submit(make_job(seed=1), priority=3, tenant="ci")
        view = entry.to_dict()
        assert view["state"] == "queued"
        assert view["terminal"] is False
        assert view["priority"] == 3
        assert view["tenant"] == "ci"
        assert view["job_id"] == entry.job.job_id
        assert "result" not in view

    def test_entries_and_results_in_submission_order(self):
        sched = Scheduler()
        sched.submit(make_job(seed=2), priority=9)
        sched.submit(make_job(seed=1), priority=0)
        seeds = [e.job.effective_seed() for e in sched.entries()]
        assert seeds == [2, 1]
        assert sched.results() == [None, None]


class TestBackpressure:
    def test_queue_full_raises_with_hint(self):
        sched = Scheduler(max_queue_depth=2, dedupe=False)
        sched.submit(make_job(seed=1))
        sched.submit(make_job(seed=2))
        with pytest.raises(QueueFull) as exc:
            sched.submit(make_job(seed=3))
        err = exc.value
        assert err.tenant == "default"
        assert err.depth == 2 and err.limit == 2
        assert err.retry_after == 5.0     # no completed jobs yet
        # The rejected submission left no trace.
        assert sched.stats()["jobs"] == 2

    def test_per_tenant_limits_are_independent(self):
        sched = Scheduler(queue_limits={"ci": 1}, dedupe=False)
        sched.submit(make_job(seed=1), tenant="ci")
        with pytest.raises(QueueFull):
            sched.submit(make_job(seed=2), tenant="ci")
        # Unlisted tenants are unbounded when max_queue_depth is unset.
        for seed in range(3, 8):
            sched.submit(make_job(seed=seed), tenant="dev")
        assert sched.stats()["queued_per_tenant"] == {"ci": 1, "dev": 5}

    def test_dedupe_follower_exempt_from_limit(self):
        sched = Scheduler(max_queue_depth=1)
        leader = sched.submit(make_job(seed=1))
        follower = sched.submit(make_job(seed=1))   # same content hash
        assert follower.deduped_onto == leader.ticket
        with pytest.raises(QueueFull):
            sched.submit(make_job(seed=2))

    def test_requeue_exempt_from_limit(self):
        sched = Scheduler(max_queue_depth=1, dedupe=False)
        entry = sched.submit(make_job(seed=1))
        leased = sched.lease()
        assert leased is entry
        filler = sched.submit(make_job(seed=2))
        assert filler.state == "queued"
        # The retry path may exceed the cap: accepted work is never
        # dropped by backpressure.
        sched.requeue(leased)
        assert sched.stats()["queued_per_tenant"]["default"] == 2

    def test_enforce_limit_false_bypasses_cap(self):
        sched = Scheduler(max_queue_depth=1, dedupe=False)
        sched.submit(make_job(seed=1))
        replayed = sched.submit(make_job(seed=2), enforce_limit=False)
        assert replayed.state == "queued"

    def test_retry_after_tracks_recent_durations(self):
        sched = Scheduler(max_queue_depth=1, dedupe=False)
        entry = sched.submit(make_job(seed=1))
        leased = sched.lease()
        result = JobResult(job_id=leased.job.job_id, status="done",
                           seed=leased.job.effective_seed(), hpwl=10.0,
                           seconds=4.0)
        sched.finish(leased, result)
        sched.submit(make_job(seed=2))
        with pytest.raises(QueueFull) as exc:
            sched.submit(make_job(seed=3))
        assert exc.value.retry_after == 4.0

    def test_leasing_frees_queue_depth(self):
        sched = Scheduler(max_queue_depth=1, dedupe=False)
        sched.submit(make_job(seed=1))
        sched.lease()
        accepted = sched.submit(make_job(seed=2))
        assert accepted.state == "queued"

    def test_stats_expose_depths_and_limits(self):
        sched = Scheduler(max_queue_depth=8, queue_limits={"ci": 2},
                          dedupe=False)
        sched.submit(make_job(seed=1), tenant="ci")
        stats = sched.stats()
        assert stats["queued_per_tenant"] == {"ci": 1}
        assert stats["queue_limits"] == {"default": 8, "ci": 2}


class TestGroupCancel:
    def test_cancel_group_queued_and_running(self):
        log = EventLog()
        sched = Scheduler(events=log, dedupe=False)
        entries = [sched.submit(make_job(seed=s), group="cohort")
                   for s in (1, 2, 3)]
        leased = sched.lease()
        counts = sched.cancel_group("cohort")
        assert counts == {"cancelled": 2, "requested": 1}
        assert leased.cancel_requested and not leased.terminal
        queued = [e for e in entries if e is not leased]
        assert all(e.state == "cancelled" for e in queued)
        assert all(e.result.seconds == 0.0 for e in queued)
        assert log.count("cancelled") == 2
        # The executor observes the flag and reports reclaimed seconds.
        sched.mark_cancelled(leased, seconds=2.5)
        assert leased.state == "cancelled"
        assert leased.result.seconds == 2.5

    def test_cancel_group_scopes_to_label(self):
        sched = Scheduler(dedupe=False)
        mine = sched.submit(make_job(seed=1), group="a")
        other = sched.submit(make_job(seed=2), group="b")
        loose = sched.submit(make_job(seed=3))
        counts = sched.cancel_group("a")
        assert counts == {"cancelled": 1, "requested": 0}
        assert mine.state == "cancelled"
        assert other.state == "queued" and loose.state == "queued"

    def test_cancel_group_skips_terminal(self):
        sched = Scheduler(dedupe=False)
        entry = sched.submit(make_job(seed=1), group="g")
        leased = sched.lease()
        sched.finish(leased, done_result(leased.job))
        assert sched.cancel_group("g") == {"cancelled": 0, "requested": 0}
        assert entry.state == "done"

    def test_group_in_entry_view(self):
        sched = Scheduler(dedupe=False)
        entry = sched.submit(make_job(seed=1), group="cohort-1")
        assert entry.to_dict()["group"] == "cohort-1"
