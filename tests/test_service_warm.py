"""Warm workers: shared-memory designs, resident dispatch, kills."""

import threading
import time

import numpy as np
import pytest

from repro.runtime import PlacementJob
from repro.service.warm import (
    DesignStore,
    WarmPool,
    attach_design,
    design_key,
    publish_design,
)

FAKE = "tests.runtime_helpers:fake_pipeline"
SLEEPY = "tests.runtime_helpers:sleepy_pipeline"


def make_job(seed=1, **overrides):
    base = dict(
        design="fft_1",
        cells=120,
        seed=seed,
        params={"max_iterations": 30, "min_iterations": 20},
        pipeline=FAKE,
    )
    base.update(overrides)
    return PlacementJob(**base)


def drain_until_result(pool, ticket, timeout=90.0):
    """Collect messages until the ticket's terminal ``_result``."""
    deadline = time.monotonic() + timeout
    messages = []
    while time.monotonic() < deadline:
        for message in pool.poll(0.05):
            messages.append(message)
            if (message.get("event") == "_result"
                    and message.get("ticket") == ticket):
                return message, messages
    raise AssertionError(f"no result for {ticket!r} within {timeout}s")


class TestSharedMemoryDesigns:
    def test_publish_attach_round_trip(self):
        job = make_job()
        netlist = job.load_netlist()
        key = design_key(job)
        manifest, segments = publish_design(netlist, key)
        try:
            attached, views = attach_design(manifest)
            try:
                assert attached.num_cells == netlist.num_cells
                assert attached.num_nets == netlist.num_nets
                for name in ("cell_w", "cell_h", "pin2cell", "pin2net",
                             "net_start", "fixed_x", "fixed_y"):
                    np.testing.assert_array_equal(
                        getattr(attached, name), getattr(netlist, name))
                # Derived CSR structures are rebuilt, not shipped.
                np.testing.assert_array_equal(
                    attached.cell_start, netlist.cell_start)
                assert attached.region.xl == netlist.region.xl
                assert (len(attached.region.rows)
                        == len(netlist.region.rows))
            finally:
                for shm in views:
                    shm.close()
        finally:
            for shm in segments:
                shm.close()
                shm.unlink()

    def test_attached_arrays_are_read_only(self):
        job = make_job()
        manifest, segments = publish_design(job.load_netlist(),
                                            design_key(job))
        try:
            attached, views = attach_design(manifest)
            try:
                with pytest.raises(ValueError):
                    attached.cell_w[0] = 1.0
            finally:
                for shm in views:
                    shm.close()
        finally:
            for shm in segments:
                shm.close()
                shm.unlink()

    def test_design_key_tracks_design_not_seed(self):
        assert design_key(make_job(seed=1)) == design_key(make_job(seed=7))
        assert design_key(make_job(cells=120)) != design_key(
            make_job(cells=121))

    def test_publish_failure_unlinks_partial_segments(self, monkeypatch):
        """A create that fails mid-loop must not leak the segments
        already published — named shared memory outlives the process."""
        from multiprocessing import shared_memory as shm_mod

        real = shm_mod.SharedMemory
        created = []
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            if kwargs.get("create"):
                calls["n"] += 1
                if calls["n"] > 2:
                    raise OSError("synthetic: out of segments")
            segment = real(*args, **kwargs)
            created.append(segment.name)
            return segment

        monkeypatch.setattr(shm_mod, "SharedMemory", flaky)
        job = make_job()
        with pytest.raises(OSError, match="synthetic"):
            publish_design(job.load_netlist(), design_key(job))
        assert len(created) == 2
        for name in created:
            with pytest.raises(FileNotFoundError):
                real(name=name)

    def test_store_publishes_once_and_evicts_lru(self):
        store = DesignStore(max_designs=1)
        try:
            first = store.manifest_for(make_job(cells=100))
            again = store.manifest_for(make_job(cells=100, seed=9))
            assert first["key"] == again["key"]
            assert first["arrays"] == again["arrays"]
            other = store.manifest_for(make_job(cells=110))
            assert other["key"] != first["key"]
            # capacity 1: the first design was unlinked.
            with pytest.raises(FileNotFoundError):
                attach_design(first)
        finally:
            store.close()


class TestWarmPool:
    def test_job_round_trip_and_warm_paths(self):
        pool = WarmPool(workers=1)
        try:
            pool.submit("a", make_job(seed=1))
            first, _ = drain_until_result(pool, "a")
            assert first["status"] == "done"
            result_metrics = first["result"]["report"]["stages"][-1]
            warm_a = result_metrics["metrics"]["warm"]
            pool.submit("b", make_job(seed=2))
            second, _ = drain_until_result(pool, "b")
            assert second["status"] == "done"
            warm_b = second["result"]["report"]["stages"][-1]["metrics"]["warm"]
            if pool.inline:
                assert warm_b in ("cold", "resident")
            else:
                assert warm_a == "attached"
                assert warm_b == "resident"
        finally:
            pool.shutdown()

    def test_results_match_cold_execution(self):
        from repro.runtime import execute_job

        job = make_job(seed=3)
        baseline = execute_job(job)
        pool = WarmPool(workers=1)
        try:
            pool.submit("t", job)
            message, _ = drain_until_result(pool, "t")
        finally:
            pool.shutdown()
        assert message["status"] == "done"
        assert message["result"]["hpwl"] == baseline.hpwl
        np.testing.assert_array_equal(np.asarray(message["x"]), baseline.x)
        np.testing.assert_array_equal(np.asarray(message["y"]), baseline.y)

    def test_picked_announcement_precedes_result(self):
        pool = WarmPool(workers=1)
        try:
            pool.submit("t", make_job(seed=1))
            message, all_messages = drain_until_result(pool, "t")
            kinds = [m.get("event") for m in all_messages]
            assert kinds.index("_picked") < kinds.index("_result")
        finally:
            pool.shutdown()

    def test_kill_worker_respawns_and_pool_survives(self):
        pool = WarmPool(workers=1)
        try:
            pool.submit("sleepy", make_job(seed=1, pipeline=SLEEPY))
            # let the worker pick it up
            deadline = time.monotonic() + 10
            picked = False
            while time.monotonic() < deadline and not picked:
                picked = any(m.get("event") == "_picked"
                             for m in pool.poll(0.05))
            assert picked
            worker = pool.worker_for("sleepy")
            assert worker is not None
            pool.kill_worker(worker)
            if pool.inline:
                # threads cancel cooperatively: the sleepy stage ignores
                # the flag, so only check the pool stays usable later.
                pytest.skip("thread fallback cannot kill a sleeping stage")
            assert pool.idle_workers()      # respawned replacement
            pool.submit("next", make_job(seed=2))
            message, _ = drain_until_result(pool, "next")
            assert message["status"] == "done"
        finally:
            pool.shutdown()

    def test_worker_listings_safe_during_respawn_churn(self):
        """/stats readers walk the worker table from HTTP threads while
        the drive loop kills and respawns handles."""
        pool = WarmPool(workers=2)
        if pool.inline:
            pool.shutdown()
            pytest.skip("respawn churn requires process workers")
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    pool.workers
                    pool.idle_workers()
                    pool.worker_for("nope")
                    pool.worker_alive(0)
                except Exception as err:  # noqa: BLE001 — the assertion
                    errors.append(err)
                    return

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            for _ in range(6):
                pool.kill_worker(0)
        finally:
            stop.set()
            thread.join(timeout=10)
            pool.shutdown()
        assert errors == []

    def test_two_workers_run_concurrently(self):
        pool = WarmPool(workers=2)
        try:
            pool.submit("a", make_job(seed=1), worker_id=pool.workers[0])
            pool.submit("b", make_job(seed=2), worker_id=pool.workers[1])
            results = {}
            deadline = time.monotonic() + 90
            while len(results) < 2 and time.monotonic() < deadline:
                for message in pool.poll(0.05):
                    if message.get("event") == "_result":
                        results[message["ticket"]] = message
            first, second = results["a"], results["b"]
            assert first["status"] == second["status"] == "done"
            if not pool.inline:
                assert first["result"]["report"]["stages"][-1]["metrics"][
                    "worker_pid"] != second["result"]["report"]["stages"][
                    -1]["metrics"]["worker_pid"]
        finally:
            pool.shutdown()
