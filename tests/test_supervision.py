"""repro.supervision: breakers, liveness, health, brownout, supervisor."""

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.job import JobResult, PlacementJob
from repro.runtime.pool import backoff_delay
from repro.supervision import (
    BrownoutController,
    BrownoutShed,
    CircuitBreaker,
    GuardedResultCache,
    LivenessMonitor,
    SupervisionConfig,
    Supervisor,
    WorkerHealth,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker("dep", failure_threshold=3,
                                 cooldown=5.0, clock=clock)
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"       # not yet
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker("dep", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"       # streak broken

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker("dep", failure_threshold=1,
                                 cooldown=2.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(2.0)
        assert breaker.allow()                 # the probe
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker("dep", failure_threshold=1,
                                 cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_transitions_are_reported(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(
            "dep", failure_threshold=1, cooldown=1.0, clock=clock,
            on_transition=lambda name, old, new: seen.append(
                (name, old, new)))
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert seen == [("dep", "closed", "open"),
                        ("dep", "open", "half-open"),
                        ("dep", "half-open", "closed")]


def _job(seed=1):
    return PlacementJob(design="fft_1", cells=48, seed=seed,
                        params={"max_iterations": 4, "min_iterations": 2})


def _result(job):
    return JobResult(job_id=job.job_id, status="done", seed=1,
                     hpwl=10.0, seconds=0.1,
                     x=[1.0, 2.0], y=[3.0, 4.0])


class TestGuardedResultCache:
    def test_bypass_while_open(self, tmp_path):
        breaker = CircuitBreaker("cache", failure_threshold=1,
                                 cooldown=60.0, clock=FakeClock())
        guarded = GuardedResultCache(ResultCache(str(tmp_path)), breaker)
        breaker.record_failure()               # open
        job = _job()
        guarded.put(job, _result(job))
        assert guarded.get(job) is None        # bypass: no store happened
        assert guarded.bypassed == 2
        assert guarded.stats()["breaker"]["state"] == "open"

    def test_oserror_counts_as_failure(self, tmp_path):
        breaker = CircuitBreaker("cache", failure_threshold=1,
                                 cooldown=60.0, clock=FakeClock())

        def hook(op):
            raise OSError("disk on fire")

        guarded = GuardedResultCache(ResultCache(str(tmp_path)), breaker,
                                     fault_hook=hook)
        assert guarded.get(_job()) is None
        assert breaker.state == "open"

    def test_slow_op_counts_as_failure_but_still_returns(self, tmp_path):
        clock = FakeClock()
        breaker = CircuitBreaker("cache", failure_threshold=1,
                                 cooldown=60.0)

        def hook(op):
            clock.advance(1.0)                 # "the I/O took a second"

        guarded = GuardedResultCache(ResultCache(str(tmp_path)), breaker,
                                     slow_op_seconds=0.5, fault_hook=hook,
                                     clock=clock)
        job = _job()
        guarded.put(job, _result(job))         # slow but landed
        assert breaker.state == "open"
        assert guarded.cache.get(job) is not None  # the write went through


class TestLivenessMonitor:
    def test_hung_versus_slow_but_progressing(self):
        clock = FakeClock()
        monitor = LivenessMonitor(hang_timeout=10.0, clock=clock)
        monitor.track("t1", "job-a", worker=0)
        monitor.track("t2", "job-b", worker=1)
        clock.advance(8.0)
        # job-a heartbeats (slow, but progressing); job-b is silent.
        monitor.observe({"event": "heartbeat", "job_id": "job-a",
                         "iteration": 5})
        clock.advance(4.0)
        hung = monitor.hung()
        assert [ledger.ticket for ledger in hung] == ["t2"]
        assert monitor.ledger("t1").iteration == 5
        assert monitor.ledger("t1").heartbeats == 1

    def test_dispatch_counts_as_progress(self):
        clock = FakeClock()
        monitor = LivenessMonitor(hang_timeout=5.0, clock=clock)
        monitor.track("t1", "job-a", worker=0)
        clock.advance(5.1)                     # never reached loop_start
        assert [ledger.ticket for ledger in monitor.hung()] == ["t1"]

    def test_forget_and_unknown_events_are_harmless(self):
        monitor = LivenessMonitor(hang_timeout=5.0, clock=FakeClock())
        monitor.track("t1", "job-a", worker=0)
        monitor.forget("t1")
        monitor.observe({"event": "heartbeat", "job_id": "job-a"})
        monitor.observe({"event": "heartbeat", "job_id": "who-dis"})
        assert monitor.snapshot() == {}

    def test_non_progress_kinds_do_not_refresh(self):
        clock = FakeClock()
        monitor = LivenessMonitor(hang_timeout=5.0, clock=clock)
        monitor.track("t1", "job-a", worker=0)
        clock.advance(6.0)
        monitor.observe({"event": "queued", "job_id": "job-a"})
        assert [ledger.ticket for ledger in monitor.hung()] == ["t1"]


class TestWorkerHealth:
    def test_two_consecutive_failures_flap(self):
        health = WorkerHealth(alpha=0.5, quarantine_below=0.35)
        assert health.score(0) == 1.0
        health.record(0, False)
        assert not health.flapping(0)          # one bad outcome survives
        health.record(0, False)
        assert health.flapping(0)

    def test_recovery_pulls_the_score_back(self):
        health = WorkerHealth(alpha=0.5, quarantine_below=0.35)
        health.record(0, False)
        health.record(0, True)
        health.record(0, False)
        assert not health.flapping(0)          # alternation never flaps

    def test_reset(self):
        health = WorkerHealth()
        health.record(0, False)
        health.record(0, False)
        health.reset(0)
        assert health.score(0) == 1.0


class TestBrownout:
    def test_ok_admits_everything(self):
        brownout = BrownoutController()
        brownout.admit(0, degraded=False)
        assert brownout.shed == 0

    def test_degraded_sheds_low_priority(self):
        brownout = BrownoutController(shed_below_priority=1,
                                      retry_after=3.0)
        with pytest.raises(BrownoutShed) as err:
            brownout.admit(0, degraded=True)
        assert err.value.state == "degraded"
        assert err.value.retry_after == 3.0
        brownout.admit(1, degraded=True)       # priority 1 still runs
        assert brownout.shed == 1

    def test_draining_sheds_everything(self):
        brownout = BrownoutController()
        brownout.drain()
        with pytest.raises(BrownoutShed) as err:
            brownout.admit(99, degraded=False)
        assert err.value.state == "draining"


class TestSupervisor:
    def make(self, clock=None):
        events = []
        supervisor = Supervisor(
            SupervisionConfig(hang_timeout=5.0, canary_delay=1.0,
                              breaker_threshold=1, breaker_cooldown=60.0),
            clock=clock or FakeClock(),
            on_event=lambda kind, job_id, **payload: events.append(
                (kind, payload)),
        )
        return supervisor, events

    def test_state_machine(self):
        supervisor, events = self.make()
        assert supervisor.service_state() == "ok"
        supervisor.breakers["cache"].record_failure()
        assert supervisor.service_state() == "degraded"
        assert ("breaker", {"name": "cache", "old": "closed",
                            "new": "open"}) in events
        supervisor.drain()
        assert supervisor.service_state() == "draining"

    def test_degraded_admission_sheds_and_emits(self):
        supervisor, events = self.make()
        supervisor.breakers["journal"].record_failure()
        with pytest.raises(BrownoutShed):
            supervisor.admit(0, job_id="cheap")
        assert supervisor.admit(3, job_id="vip") is None
        shed = [payload for kind, payload in events if kind == "shed"]
        assert len(shed) == 1 and shed[0]["state"] == "degraded"
        assert supervisor.counters()["shed"] == 1

    def test_quarantine_cycle(self):
        clock = FakeClock()
        supervisor, events = self.make(clock=clock)
        assert not supervisor.note_outcome(0, False)
        assert supervisor.note_outcome(0, False)   # now flapping
        supervisor.begin_quarantine(0)
        assert supervisor.quarantined_workers() == [0]
        assert supervisor.service_state() == "degraded"
        assert supervisor.probe_due() == []        # canary_delay pending
        clock.advance(1.0)
        assert supervisor.probe_due() == [0]
        ticket = f"canary:0:{supervisor.next_canary_ordinal()}"
        supervisor.begin_probe(ticket, 0)
        assert supervisor.probe_due() == []        # probe outstanding
        assert supervisor.canary_worker(ticket) == 0
        supervisor.end_quarantine(ticket, 0, healthy=True)
        assert supervisor.quarantined_workers() == []
        assert supervisor.health.score(0) == 1.0   # fresh start
        counters = supervisor.counters()
        assert counters["quarantines"] == 1
        assert counters["probes"] == 1
        assert counters["restores"] == 1
        actions = [payload["action"] for kind, payload in events
                   if kind == "quarantine"]
        assert actions == ["enter", "probe", "restore"]

    def test_flapping_worker_not_requarantined_while_quarantined(self):
        supervisor, _ = self.make()
        supervisor.note_outcome(0, False)
        assert supervisor.note_outcome(0, False)
        supervisor.begin_quarantine(0)
        assert not supervisor.note_outcome(0, False)   # already in


class TestSummaryFooter:
    def _table(self, supervision):
        from repro.runtime.batch import summary_table
        job = _job()
        return summary_table([job], [_result(job)],
                             supervision=supervision)

    def test_footer_appears_when_counters_nonzero(self):
        table = self._table({"preemptions": 2, "quarantines": 1,
                             "breaker_trips": 3, "shed": 4})
        assert ("supervision: 2 preemption(s), 1 quarantine(s), "
                "3 breaker trip(s), 4 shed submit(s)") in table

    def test_footer_absent_when_quiet(self):
        quiet = self._table({"preemptions": 0, "quarantines": 0,
                             "breaker_trips": 0, "shed": 0})
        assert "supervision:" not in quiet
        assert "supervision:" not in self._table(None)


class TestBackoffCeiling:
    def test_cap_applies_after_jitter(self):
        uncapped = backoff_delay("job", 12, 0.5)
        capped = backoff_delay("job", 12, 0.5, max_delay=2.0)
        assert uncapped > 2.0
        assert capped == 2.0

    def test_under_the_cap_is_unchanged(self):
        assert backoff_delay("job", 1, 0.5, max_delay=60.0) == \
            backoff_delay("job", 1, 0.5)

    def test_deterministic_per_job(self):
        assert backoff_delay("a", 3, 0.25, max_delay=10.0) == \
            backoff_delay("a", 3, 0.25, max_delay=10.0)
