"""Tests for the STA substrate and timing-driven placement."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams, XPlacer
from repro.netlist import NetlistBuilder, PlacementRegion
from repro.timing import TimingDrivenPlacer, TimingGraph, run_sta
from repro.timing.driven import reweighted_netlist


def chain_netlist(stages=4, spacing=10.0):
    """a0 -> a1 -> ... chain with known geometry."""
    builder = NetlistBuilder("chain")
    builder.set_region(PlacementRegion.with_uniform_rows(0, 0, 100, 20, 10))
    for i in range(stages):
        builder.add_cell(f"a{i}", 2, 10)
    for i in range(stages - 1):
        builder.add_net(f"n{i}", [(f"a{i}", 0, 0), (f"a{i+1}", 0, 0)])
    nl = builder.build()
    x = np.arange(stages) * spacing + 5.0
    y = np.full(stages, 5.0)
    return nl, x, y


@pytest.fixture(scope="module")
def circuit():
    return generate_circuit(
        CircuitSpec("sta", num_cells=200, num_macros=0, num_pads=8)
    )


class TestTimingGraph:
    def test_chain_arcs(self):
        nl, __, __ = chain_netlist(4)
        graph = TimingGraph.from_netlist(nl)
        assert graph.num_arcs == 3
        assert graph.is_acyclic()

    def test_multi_fanout_net(self):
        builder = NetlistBuilder()
        builder.set_region(PlacementRegion.with_uniform_rows(0, 0, 50, 20, 10))
        for name in "abc":
            builder.add_cell(name, 2, 10)
        builder.add_net("n", [("a", 0, 0), ("b", 0, 0), ("c", 0, 0)])
        graph = TimingGraph.from_netlist(builder.build())
        # Lowest-index cell (a) drives b and c.
        assert graph.num_arcs == 2
        assert set(graph.sink_cell.tolist()) == {1, 2}
        assert set(graph.driver_cell.tolist()) == {0}

    def test_random_circuit_acyclic(self, circuit):
        graph = TimingGraph.from_netlist(circuit)
        assert graph.is_acyclic()
        assert graph.num_arcs > 0

    def test_arc_delays_grow_with_distance(self):
        nl, x, y = chain_netlist(3, spacing=10.0)
        graph = TimingGraph.from_netlist(nl)
        near = graph.arc_delays(x, y, cell_delay=1.0, wire_delay_per_unit=0.1)
        far = graph.arc_delays(x * 3, y, cell_delay=1.0, wire_delay_per_unit=0.1)
        assert np.all(far > near)


class TestSta:
    def test_chain_arrival_times(self):
        nl, x, y = chain_netlist(4, spacing=10.0)
        graph = TimingGraph.from_netlist(nl)
        sta = run_sta(graph, x, y, cell_delay=1.0, wire_delay_per_unit=0.1)
        # Each arc: 1.0 + 0.1 * 10 = 2.0; arrivals 0, 2, 4, 6.
        np.testing.assert_allclose(sta.arrival, [0.0, 2.0, 4.0, 6.0])
        assert sta.clock_period == pytest.approx(6.0)
        # Whole chain is critical: all slacks zero.
        np.testing.assert_allclose(sta.arc_slack, 0.0, atol=1e-12)
        assert sta.wns == 0.0

    def test_explicit_period_creates_violations(self):
        nl, x, y = chain_netlist(4, spacing=10.0)
        graph = TimingGraph.from_netlist(nl)
        sta = run_sta(graph, x, y, cell_delay=1.0, wire_delay_per_unit=0.1,
                      clock_period=4.0)
        assert sta.wns == pytest.approx(-2.0)
        assert sta.tns < 0

    def test_criticality_range_and_peak(self, circuit):
        rng = np.random.default_rng(0)
        region = circuit.region
        x = rng.uniform(region.xl, region.xh, circuit.num_cells)
        y = rng.uniform(region.yl, region.yh, circuit.num_cells)
        graph = TimingGraph.from_netlist(circuit)
        sta = run_sta(graph, x, y)
        crit = sta.criticality()
        assert np.all((crit >= 0) & (crit <= 1))
        assert crit.max() == pytest.approx(1.0)  # the critical path

    def test_slack_nonnegative_at_self_period(self, circuit):
        rng = np.random.default_rng(1)
        region = circuit.region
        x = rng.uniform(region.xl, region.xh, circuit.num_cells)
        y = rng.uniform(region.yl, region.yh, circuit.num_cells)
        graph = TimingGraph.from_netlist(circuit)
        sta = run_sta(graph, x, y)
        assert sta.arc_slack.min() >= -1e-9

    def test_required_after_arrival(self, circuit):
        rng = np.random.default_rng(2)
        region = circuit.region
        x = rng.uniform(region.xl, region.xh, circuit.num_cells)
        y = rng.uniform(region.yl, region.yh, circuit.num_cells)
        graph = TimingGraph.from_netlist(circuit)
        sta = run_sta(graph, x, y)
        cells = np.unique(
            np.concatenate([graph.driver_cell, graph.sink_cell])
        )
        assert np.all(sta.required[cells] >= sta.arrival[cells] - 1e-9)


class TestTimingDriven:
    def test_reweighted_netlist(self, circuit):
        weights = circuit.net_weight * 2
        copy = reweighted_netlist(circuit, weights)
        np.testing.assert_allclose(copy.net_weight, weights)
        assert copy.num_pins == circuit.num_pins

    def test_loop_shrinks_critical_delay(self, circuit):
        placer = TimingDrivenPlacer(
            circuit, PlacementParams(max_iterations=400), rounds=3
        )
        result = placer.run()
        first = result.rounds[0]
        assert result.critical_delay <= first.critical_delay + 1e-9
        assert result.delay_improvement >= 0
        # Weights actually moved.
        assert result.rounds[-1].max_weight > 1.0

    def test_wirelength_cost_bounded(self, circuit):
        placer = TimingDrivenPlacer(
            circuit, PlacementParams(max_iterations=400), rounds=2
        )
        result = placer.run()
        baseline = result.rounds[0].hpwl
        # Timing weighting trades some HPWL, but not unboundedly.
        assert result.hpwl < 1.3 * baseline
