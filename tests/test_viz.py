"""Tests for the SVG/ASCII visualization module."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams, XPlacer
from repro.viz import ascii_density, convergence_svg, density_svg, placement_svg


@pytest.fixture(scope="module")
def placed():
    nl = generate_circuit(CircuitSpec("viz", num_cells=150, num_macros=2))
    result = XPlacer(nl, PlacementParams(max_iterations=60, min_iterations=60,
                                         stop_overflow=1e-12)).run()
    return nl, result


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestPlacementSVG:
    def test_well_formed_and_contains_cells(self, placed):
        nl, result = placed
        svg = placement_svg(nl, result.x, result.y)
        root = _parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        rects = root.findall(f"{ns}rect")
        circles = root.findall(f"{ns}circle")
        # Background + cells + macros as rects; pads as circles.
        assert len(rects) >= nl.num_movable
        assert len(circles) > 0

    def test_writes_file(self, placed, tmp_path):
        nl, result = placed
        out = tmp_path / "placement.svg"
        placement_svg(nl, result.x, result.y, path=str(out))
        assert out.exists()
        _parse(out.read_text())

    def test_max_cells_cap(self, placed):
        nl, result = placed
        svg = placement_svg(nl, result.x, result.y, max_cells=10)
        root = _parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        # background + at most 10 drawn cells + row lines
        assert len(root.findall(f"{ns}rect")) <= 11

    def test_nan_positions_skipped(self, placed):
        nl, result = placed
        x = result.x.copy()
        x[nl.movable_index[0]] = np.nan
        svg = placement_svg(nl, x, result.y)
        _parse(svg)  # still well-formed


class TestDensitySVG:
    def test_heatmap_rect_count(self):
        density = np.random.default_rng(0).uniform(0, 2, (16, 16))
        svg = density_svg(density)
        root = _parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        assert len(root.findall(f"{ns}rect")) == 256

    def test_large_map_pooled(self):
        density = np.random.default_rng(1).uniform(0, 2, (256, 256))
        svg = density_svg(density, max_resolution=32)
        root = _parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        assert len(root.findall(f"{ns}rect")) == 32 * 32

    def test_zero_map(self):
        svg = density_svg(np.zeros((8, 8)))
        _parse(svg)


class TestConvergenceSVG:
    def test_traces_drawn(self, placed):
        __, result = placed
        svg = convergence_svg(result.recorder)
        root = _parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        assert len(root.findall(f"{ns}polyline")) == 2
        labels = [t.text for t in root.findall(f"{ns}text")]
        assert "hpwl" in labels and "overflow" in labels

    def test_empty_recorder(self):
        from repro.core import Recorder

        svg = convergence_svg(Recorder())
        _parse(svg)


class TestAscii:
    def test_shape_and_ramp(self):
        density = np.zeros((32, 32))
        density[0, 0] = 1.0  # bottom-left hot spot
        art = ascii_density(density, width=32)
        lines = art.split("\n")
        assert len(lines) == 32
        # Hot spot renders in the last (bottom) line, first column.
        assert lines[-1][0] == "@"
        assert lines[0][0] == " "

    def test_pooling(self):
        density = np.random.default_rng(0).uniform(0, 1, (64, 64))
        art = ascii_density(density, width=16)
        assert len(art.split("\n")) == 16
