"""Unit + property tests for HPWL / WA / LSE wirelength operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import CircuitSpec, generate_circuit
from repro.netlist import NetlistBuilder, PlacementRegion
from repro.wirelength import (
    WirelengthOp,
    hpwl,
    hpwl_per_net,
    lse_wirelength,
    wa_wirelength_and_grad,
)


@pytest.fixture(scope="module")
def circuit():
    return generate_circuit(CircuitSpec("wl", num_cells=60, num_macros=0, num_pads=4))


@pytest.fixture(scope="module")
def placement(circuit):
    rng = np.random.default_rng(7)
    x = rng.uniform(10, 90, circuit.num_cells)
    y = rng.uniform(10, 90, circuit.num_cells)
    return x, y


def two_cell_net():
    builder = NetlistBuilder()
    builder.set_region(PlacementRegion(0, 0, 100, 100))
    builder.add_cell("a", 2, 2)
    builder.add_cell("b", 2, 2)
    builder.add_net("n", [("a", 0, 0), ("b", 0, 0)])
    return builder.build()


class TestHPWL:
    def test_two_pin_net_manhattan_box(self):
        nl = two_cell_net()
        x = np.array([10.0, 30.0])
        y = np.array([5.0, 25.0])
        assert hpwl(nl, x, y) == pytest.approx(40.0)

    def test_translation_invariance(self, circuit, placement):
        x, y = placement
        base = hpwl(circuit, x, y)
        shifted = hpwl(circuit, x + 13.7, y - 4.2)
        assert shifted == pytest.approx(base, rel=1e-12)

    def test_degenerate_nets_contribute_zero(self):
        builder = NetlistBuilder()
        builder.set_region(PlacementRegion(0, 0, 10, 10))
        builder.add_cell("a", 1, 1)
        builder.add_net("solo", [("a", 0, 0)])
        builder.add_net("void", [])
        nl = builder.build()
        assert hpwl(nl, np.array([5.0]), np.array([5.0])) == 0.0

    def test_net_weights_scale_result(self):
        builder = NetlistBuilder()
        builder.set_region(PlacementRegion(0, 0, 100, 100))
        builder.add_cell("a", 2, 2)
        builder.add_cell("b", 2, 2)
        builder.add_net("n", [("a", 0, 0), ("b", 0, 0)], weight=2.5)
        nl = builder.build()
        x = np.array([0.0, 10.0])
        y = np.array([0.0, 0.0])
        assert hpwl(nl, x, y) == pytest.approx(25.0)

    def test_per_net_values(self, circuit, placement):
        x, y = placement
        per_net = hpwl_per_net(circuit, x, y)
        assert per_net.shape == (circuit.num_nets,)
        assert np.all(per_net >= 0)
        total = float(np.sum(per_net * circuit.net_weight))
        assert total == pytest.approx(hpwl(circuit, x, y))

    @given(dx=st.floats(-50, 50), dy=st.floats(-50, 50))
    @settings(max_examples=20, deadline=None)
    def test_translation_invariance_property(self, dx, dy):
        nl = two_cell_net()
        x = np.array([10.0, 30.0])
        y = np.array([5.0, 25.0])
        assert hpwl(nl, x + dx, y + dy) == pytest.approx(hpwl(nl, x, y), abs=1e-8)


class TestWA:
    def test_wa_bounds_hpwl_below(self, circuit, placement):
        x, y = placement
        result = WirelengthOp(circuit)(x, y, gamma=2.0)
        assert result.wa <= result.hpwl + 1e-9

    def test_wa_converges_to_hpwl_as_gamma_shrinks(self, circuit, placement):
        x, y = placement
        op = WirelengthOp(circuit)
        exact = hpwl(circuit, x, y)
        errors = [abs(op(x, y, g).wa - exact) for g in (8.0, 2.0, 0.5)]
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] / max(exact, 1) < 0.01

    def test_combined_hpwl_matches_standalone(self, circuit, placement):
        x, y = placement
        result = WirelengthOp(circuit)(x, y, gamma=1.0)
        assert result.hpwl == pytest.approx(hpwl(circuit, x, y), rel=1e-12)

    def test_uncombined_mode_same_values(self, circuit, placement):
        x, y = placement
        fused = WirelengthOp(circuit, combined=True)(x, y, 1.5)
        split = WirelengthOp(circuit, combined=False)(x, y, 1.5)
        assert fused.wa == pytest.approx(split.wa)
        assert fused.hpwl == pytest.approx(split.hpwl)
        np.testing.assert_allclose(fused.grad_x, split.grad_x)

    def test_gradient_matches_finite_difference(self, circuit, placement):
        x, y = placement
        op = WirelengthOp(circuit)
        gamma = 3.0
        result = op(x, y, gamma)
        eps = 1e-5
        rng = np.random.default_rng(1)
        for i in rng.choice(circuit.num_cells, 6, replace=False):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            fd = (op(xp, y, gamma).wa - op(xm, y, gamma).wa) / (2 * eps)
            assert result.grad_x[i] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_gradient_sums_to_zero(self, circuit, placement):
        x, y = placement
        result = WirelengthOp(circuit)(x, y, gamma=2.0)
        assert result.grad_x.sum() == pytest.approx(0.0, abs=1e-8)
        assert result.grad_y.sum() == pytest.approx(0.0, abs=1e-8)

    def test_gradient_pulls_two_pin_net_together(self):
        nl = two_cell_net()
        x = np.array([10.0, 30.0])
        y = np.array([5.0, 5.0])
        result = WirelengthOp(nl)(x, y, gamma=1.0)
        # Descent direction -grad moves a right (+) and b left (-).
        assert result.grad_x[0] < 0
        assert result.grad_x[1] > 0

    def test_numerical_stability_large_coordinates(self):
        nl = two_cell_net()
        x = np.array([1e6, 1e6 + 50.0])
        y = np.array([1e6, 1e6])
        result = WirelengthOp(nl)(x, y, gamma=0.5)
        assert np.isfinite(result.wa)
        assert np.all(np.isfinite(result.grad_x))
        assert result.wa == pytest.approx(50.0, abs=1.0)

    def test_functional_wrapper(self, circuit, placement):
        x, y = placement
        a = wa_wirelength_and_grad(circuit, x, y, 2.0)
        b = WirelengthOp(circuit)(x, y, 2.0)
        assert a.wa == pytest.approx(b.wa)

    @given(gamma=st.floats(0.2, 10.0))
    @settings(max_examples=15, deadline=None)
    def test_wa_below_hpwl_property(self, gamma):
        nl = two_cell_net()
        x = np.array([12.0, 47.0])
        y = np.array([8.0, 31.0])
        result = WirelengthOp(nl)(x, y, gamma)
        assert result.wa <= result.hpwl + 1e-9


class TestLSE:
    def test_lse_bounds_hpwl_above(self, circuit, placement):
        x, y = placement
        exact = hpwl(circuit, x, y)
        assert lse_wirelength(circuit, x, y, gamma=2.0) >= exact - 1e-9

    def test_lse_converges_to_hpwl(self, circuit, placement):
        x, y = placement
        exact = hpwl(circuit, x, y)
        err = abs(lse_wirelength(circuit, x, y, gamma=0.3) - exact)
        assert err / exact < 0.05

    def test_ordering_wa_hpwl_lse(self, circuit, placement):
        x, y = placement
        gamma = 2.0
        wa = WirelengthOp(circuit)(x, y, gamma).wa
        exact = hpwl(circuit, x, y)
        lse = lse_wirelength(circuit, x, y, gamma)
        assert wa <= exact <= lse


class TestSegments:
    def test_segment_sum_handles_empty_nets(self):
        from repro.wirelength.segments import segment_sum

        values = np.array([1.0, 2.0, 3.0])
        net_start = np.array([0, 2, 2, 3])  # middle net empty
        out = segment_sum(values, net_start)
        assert out.tolist() == [3.0, 0.0, 3.0]

    def test_segment_ops_empty_input(self):
        from repro.wirelength.segments import segment_max, segment_min, segment_sum

        values = np.empty(0)
        net_start = np.array([0, 0])
        assert segment_sum(values, net_start).tolist() == [0.0]
        assert segment_max(values, net_start).shape == (1,)
        assert segment_min(values, net_start).shape == (1,)

    def test_trailing_empty_net_no_indexerror(self):
        from repro.wirelength.segments import segment_max

        values = np.array([5.0, 1.0])
        net_start = np.array([0, 2, 2])  # last net empty, start == len(values)
        out = segment_max(values, net_start)
        assert out[0] == 5.0
